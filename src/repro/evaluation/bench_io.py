"""Benchmark artifacts (``BENCH_*.json``) and baseline regression gating.

Every evaluation run can leave a machine-readable trail: one
``BENCH_<experiment>.json`` per experiment, carrying the headline numbers
(speedups / IIs), the per-loop II / ResMII / RecMII breakdown, and the
compile-effort telemetry (wall ms, KL probe counts, scheduler attempts).
A checked-in ``benchmarks/baseline.json`` — the same payloads, combined —
turns any later run into a regression gate: ``compare_to_baseline``
reports every loop whose II got worse and every benchmark whose speedup
dropped beyond tolerance, and the ``--compare-baseline`` CLI mode exits
nonzero when the list is non-empty.

Wall-clock telemetry is recorded in the artifacts but never gated on:
the corpus and the compiler are deterministic, machine speed is not.
"""

from __future__ import annotations

import json
import os
import tempfile
from dataclasses import dataclass

from repro.evaluation.experiments import Evaluator, figure1_iis
from repro.workloads.spec import BENCHMARK_NAMES

BENCH_SCHEMA_VERSION = 1

#: Experiments with comparable headline metrics (everything the CLI runs).
EXPERIMENTS = ("figure1", "table2", "table3", "table4", "table5")

#: Relative drop in a speedup column that counts as a regression.
DEFAULT_SPEEDUP_TOLERANCE = 0.02

#: Absolute growth in a per-iteration II that counts as a regression
#: (IIs are deterministic integers scaled by unroll factors — any real
#: change exceeds this).
DEFAULT_II_TOLERANCE = 1e-6


@dataclass(frozen=True)
class Regression:
    """One metric that got worse than the baseline."""

    experiment: str
    metric: str
    baseline: float
    current: float

    def render(self) -> str:
        return (
            f"[{self.experiment}] {self.metric}: baseline {self.baseline:g} "
            f"-> current {self.current:g}"
        )


# ----------------------------------------------------------------------
# Collection


#: Deterministic compile-effort counters gated by ``--gate-effort``:
#: pure functions of the corpus and the compiler, unlike wall clock.
EFFORT_COUNTERS = (
    "kl_iterations",
    "kl_probes",
    "kl_bin_packs",
    "kl_repacks",
    "kl_pack_steps",
    "sched_attempts",
)


def telemetry_payload(
    evaluator: Evaluator, names: tuple[str, ...]
) -> dict[str, dict[str, dict[str, float]]]:
    return {
        name: {
            label: {
                "loops": t.loops,
                "wall_ms": round(t.wall_ms, 3),
                "kl_iterations": t.kl_iterations,
                "kl_probes": t.kl_probes,
                "kl_probe_cache_hits": t.kl_probe_cache_hits,
                "kl_bin_packs": t.kl_bin_packs,
                "kl_repacks": t.kl_repacks,
                "kl_pack_steps": t.kl_pack_steps,
                "sched_attempts": t.sched_attempts,
                "cache_hits": t.cache_hits,
                "cache_misses": t.cache_misses,
                "check_ms": round(t.check_ms, 3),
                "check_findings": t.check_findings,
            }
            for label, t in variants.items()
        }
        for name, variants in evaluator.telemetry_rows(names).items()
    }


def compile_perf_payload(
    evaluator: Evaluator,
    names: tuple[str, ...] = BENCHMARK_NAMES,
    wall_s: float | None = None,
) -> dict[str, object]:
    """The ``BENCH_compile_perf.json`` artifact: how much compile effort
    this run spent and how it obtained the results (pool size, compile
    cache hit/miss split, wall clock).  The ``effort`` block is
    deterministic and comparable across machines; ``wall_s`` is not."""
    telemetry = telemetry_payload(evaluator, names)
    totals = {counter: 0 for counter in EFFORT_COUNTERS}
    totals["kl_probe_cache_hits"] = 0
    cache_hits = cache_misses = loops = 0
    for variants in telemetry.values():
        for row in variants.values():
            for counter in totals:
                totals[counter] += row[counter]
            cache_hits += row["cache_hits"]
            cache_misses += row["cache_misses"]
            loops += row["loops"]
    payload: dict[str, object] = {
        "schema_version": BENCH_SCHEMA_VERSION,
        "experiment": "compile_perf",
        "jobs": evaluator.jobs,
        "compile_cache": evaluator.compile_cache is not None,
        "loops": loops,
        "cache_hits": cache_hits,
        "cache_misses": cache_misses,
        "effort": totals,
        "telemetry": telemetry,
    }
    if wall_s is not None:
        payload["wall_s"] = round(wall_s, 3)
    return payload


def payload_for(
    experiment: str,
    data: object,
    evaluator: Evaluator | None = None,
    names: tuple[str, ...] = BENCHMARK_NAMES,
) -> dict[str, object]:
    """Assemble the artifact payload for an already-computed result.

    ``figure1`` carries only its headline IIs; the tables additionally
    ride the per-loop II breakdown and compile telemetry accumulated in
    ``evaluator``.
    """
    payload: dict[str, object] = {
        "schema_version": BENCH_SCHEMA_VERSION,
        "experiment": experiment,
        "data": data,
    }
    if experiment != "figure1" and evaluator is not None:
        payload["loops"] = evaluator.loop_metric_rows(names)
        payload["telemetry"] = telemetry_payload(evaluator, names)
    return payload


def collect_experiment(
    evaluator: Evaluator,
    experiment: str,
    names: tuple[str, ...] = BENCHMARK_NAMES,
) -> dict[str, object]:
    """Run one experiment and assemble its artifact payload."""
    if experiment == "figure1":
        data: object = figure1_iis()
    elif experiment == "table2":
        data = evaluator.table2(names)
    elif experiment == "table3":
        data = evaluator.table3(names)
    elif experiment == "table4":
        data = evaluator.table4(names)
    elif experiment == "table5":
        data = evaluator.table5(names)
    else:
        raise ValueError(f"unknown experiment {experiment!r}")
    return payload_for(experiment, data, evaluator, names)


def collect(
    evaluator: Evaluator,
    experiments: tuple[str, ...] = EXPERIMENTS,
    names: tuple[str, ...] = BENCHMARK_NAMES,
) -> dict[str, dict[str, object]]:
    return {
        experiment: collect_experiment(evaluator, experiment, names)
        for experiment in experiments
    }


# ----------------------------------------------------------------------
# Artifact files


def artifact_name(experiment: str) -> str:
    return f"BENCH_{experiment}.json"


#: Number of decimals every wall-clock float is rounded to in artifacts.
WALL_DECIMALS = 3


def canonicalize_payload(tree: object) -> object:
    """The canonical artifact form: wall-clock floats rounded to a fixed
    precision everywhere (payload builders already round, but the write
    path enforces it so hand-assembled payloads serialize identically).
    Key order is canonicalized at dump time (``sort_keys``)."""
    from repro.ledger.record import WALL_FIELDS

    if isinstance(tree, dict):
        return {
            key: (
                round(float(value), WALL_DECIMALS)
                if key in WALL_FIELDS and isinstance(value, (int, float))
                and not isinstance(value, bool)
                else canonicalize_payload(value)
            )
            for key, value in tree.items()
        }
    if isinstance(tree, list):
        return [canonicalize_payload(item) for item in tree]
    return tree


def _equivalent_artifact_exists(path: str, payload: object) -> bool:
    """True when ``path`` already holds this payload modulo volatile
    fields (wall clock, cache traffic).  Tolerates artifacts written by
    older bench_io versions (different rounding or key order): only the
    deterministic content decides."""
    from repro.ledger.record import strip_wall_fields

    try:
        with open(path, encoding="utf-8") as f:
            existing = json.load(f)
    except (OSError, ValueError):
        return False
    return strip_wall_fields(existing) == strip_wall_fields(payload)


def _atomic_write_json(path: str, payload: object) -> None:
    """Write ``payload`` atomically: serialize to a sibling tempfile,
    then ``os.replace``.  Sweep shards, the perf-smoke jobs, and the
    dashboard all read BENCH artifacts while other processes rewrite
    them — a reader must only ever see a complete old or new file,
    never a torn write (F-ATOMIC)."""
    directory = os.path.dirname(path) or "."
    fd, tmp = tempfile.mkstemp(dir=directory, prefix=".bench-", suffix=".tmp")
    try:
        with os.fdopen(fd, "w", encoding="utf-8") as f:
            json.dump(payload, f, indent=2, sort_keys=True)
            f.write("\n")
        os.replace(tmp, path)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise


def write_bench_json(
    experiment: str, payload: dict[str, object], directory: str = "."
) -> str:
    """Write one ``BENCH_<experiment>.json`` artifact; returns its path.

    Writes are canonical — sorted keys, fixed wall-float rounding, one
    trailing newline — atomic (tempfile + ``os.replace``), and a no-op
    run (identical deterministic content, only wall clock / cache
    traffic moved) leaves the existing file untouched, so committed
    artifacts stop churning.
    """
    os.makedirs(directory, exist_ok=True)
    path = os.path.join(directory, artifact_name(experiment))
    payload = canonicalize_payload(payload)  # type: ignore[assignment]
    if os.path.exists(path) and _equivalent_artifact_exists(path, payload):
        return path
    _atomic_write_json(path, payload)
    return path


def write_baseline(
    path: str, payloads: dict[str, dict[str, object]]
) -> str:
    """Combine experiment payloads into one baseline file (canonical
    form; an equivalent-modulo-volatile baseline is left untouched)."""
    document = {
        "schema_version": BENCH_SCHEMA_VERSION,
        "experiments": canonicalize_payload(payloads),
    }
    if os.path.exists(path) and _equivalent_artifact_exists(path, document):
        return path
    _atomic_write_json(path, document)
    return path


def load_baseline(path: str) -> dict[str, dict[str, object]]:
    with open(path, encoding="utf-8") as f:
        document = json.load(f)
    if document.get("schema_version") != BENCH_SCHEMA_VERSION:
        raise ValueError(
            f"baseline {path} has schema_version "
            f"{document.get('schema_version')!r}, expected "
            f"{BENCH_SCHEMA_VERSION}"
        )
    return document["experiments"]


# ----------------------------------------------------------------------
# Comparison


def _walk_numeric(tree: object, prefix: str = "") -> dict[str, float]:
    """Flatten nested dicts to ``dotted.path -> number`` leaves."""
    leaves: dict[str, float] = {}
    if isinstance(tree, dict):
        for key, value in tree.items():
            path = f"{prefix}.{key}" if prefix else str(key)
            leaves.update(_walk_numeric(value, path))
    elif isinstance(tree, bool):
        pass
    elif isinstance(tree, (int, float)):
        leaves[prefix] = float(tree)
    return leaves


def _gate_lower_is_better(
    experiment: str,
    metric_prefix: str,
    current: object,
    baseline: object,
    tolerance: float,
) -> list[Regression]:
    cur, base = _walk_numeric(current), _walk_numeric(baseline)
    return [
        Regression(experiment, f"{metric_prefix}{path}", base[path], cur[path])
        for path in sorted(base)
        if path in cur and cur[path] > base[path] + tolerance
    ]


def _gate_higher_is_better(
    experiment: str,
    metric_prefix: str,
    current: object,
    baseline: object,
    tolerance: float,
) -> list[Regression]:
    cur, base = _walk_numeric(current), _walk_numeric(baseline)
    return [
        Regression(experiment, f"{metric_prefix}{path}", base[path], cur[path])
        for path in sorted(base)
        if path in cur and cur[path] < base[path] * (1.0 - tolerance)
    ]


def compare_to_baseline(
    payloads: dict[str, dict[str, object]],
    baseline: dict[str, dict[str, object]],
    speedup_tolerance: float = DEFAULT_SPEEDUP_TOLERANCE,
    ii_tolerance: float = DEFAULT_II_TOLERANCE,
) -> list[Regression]:
    """Regressions of ``payloads`` against ``baseline``.

    Gated metrics: per-loop final II (lower is better, absolute
    tolerance), figure1 IIs (lower is better), and table speedups (higher
    is better, relative tolerance).  Only experiments present on both
    sides are compared; table3 outcome counts and all telemetry are
    informational.
    """
    regressions: list[Regression] = []
    for experiment, base_payload in baseline.items():
        payload = payloads.get(experiment)
        if payload is None:
            continue
        if experiment == "figure1":
            regressions += _gate_lower_is_better(
                experiment,
                "ii.",
                payload["data"],
                base_payload["data"],
                ii_tolerance,
            )
            continue
        if experiment in ("table2", "table4", "table5"):
            regressions += _gate_higher_is_better(
                experiment,
                "speedup.",
                payload["data"],
                base_payload["data"],
                speedup_tolerance,
            )
        base_loops = {
            path: value
            for path, value in _walk_numeric(
                base_payload.get("loops", {})
            ).items()
            if path.endswith(".ii")
        }
        cur_loops = _walk_numeric(payload.get("loops", {}))
        regressions += [
            Regression(experiment, f"loop.{path}", base_loops[path], cur_loops[path])
            for path in sorted(base_loops)
            if path in cur_loops
            and cur_loops[path] > base_loops[path] + ii_tolerance
        ]
    # A metric may be reachable through several experiments (per-loop IIs
    # ride along with every table); report each offender once.
    unique: dict[str, Regression] = {}
    for r in regressions:
        unique.setdefault(f"{r.metric}", r)
    return list(unique.values())


def render_comparison(regressions: list[Regression]) -> str:
    if not regressions:
        return "baseline comparison: OK (no II or speedup regressions)"
    lines = [
        f"baseline comparison: {len(regressions)} regression(s) detected"
    ]
    lines += [f"  {r.render()}" for r in regressions]
    return "\n".join(lines)


def compare_effort(
    payloads: dict[str, dict[str, object]],
    baseline: dict[str, dict[str, object]],
) -> list[Regression]:
    """Compile-*effort* regressions against the baseline.

    Every deterministic counter in :data:`EFFORT_COUNTERS` must not grow
    for any (benchmark, variant) batch: the compiler and the corpus are
    pure, so a counter increase means the search genuinely got more
    expensive — unlike wall clock, which this gate deliberately ignores.
    """
    regressions: list[Regression] = []
    for experiment, base_payload in baseline.items():
        payload = payloads.get(experiment)
        if payload is None:
            continue
        base_tel = base_payload.get("telemetry")
        cur_tel = payload.get("telemetry")
        if not isinstance(base_tel, dict) or not isinstance(cur_tel, dict):
            continue
        for name, base_variants in base_tel.items():
            cur_variants = cur_tel.get(name, {})
            for label, base_row in base_variants.items():
                cur_row = cur_variants.get(label)
                if cur_row is None:
                    continue
                for counter in EFFORT_COUNTERS:
                    if counter not in base_row or counter not in cur_row:
                        continue
                    if cur_row[counter] > base_row[counter]:
                        regressions.append(
                            Regression(
                                experiment,
                                f"effort.{name}.{label}.{counter}",
                                float(base_row[counter]),
                                float(cur_row[counter]),
                            )
                        )
    unique: dict[str, Regression] = {}
    for r in regressions:
        unique.setdefault(r.metric, r)
    return list(unique.values())


def render_effort_comparison(regressions: list[Regression]) -> str:
    if not regressions:
        return "effort gate: OK (no compile-effort counter grew)"
    lines = [f"effort gate: {len(regressions)} counter regression(s)"]
    lines += [f"  {r.render()}" for r in regressions]
    return "\n".join(lines)


def oracle_gap_regressions(
    payload: dict[str, object],
) -> list[Regression]:
    """The oracle-gap gate: on every loop the oracle *certified*, the
    heuristics must match the exact optimum.

    A certified partition with ``kl_gap > 0`` or a certified unit with
    ``ii_gap > 0`` is a genuine heuristic shortfall (the oracle holds a
    witness partition/schedule that beats the compiler's), reported as a
    :class:`Regression` against a baseline of zero.  ``bounded`` and
    ``timeout`` certificates never gate — they carry no refutation.
    """
    data = payload.get("data", {})
    loops: dict[str, dict[str, object]] = data.get("loops", {})  # type: ignore[union-attr]
    regressions: list[Regression] = []
    for name, row in loops.items():
        part = row.get("partition") or {}
        if part.get("status") == "certified" and (part.get("kl_gap") or 0) > 0:
            regressions.append(
                Regression(
                    experiment="oracle_gap",
                    metric=f"{name}/kl_gap",
                    baseline=0.0,
                    current=float(part["kl_gap"]),
                )
            )
        for unit, u in (row.get("units") or {}).items():
            if u.get("status") == "certified" and (u.get("ii_gap") or 0) > 0:
                regressions.append(
                    Regression(
                        experiment="oracle_gap",
                        metric=f"{unit}/ii_gap",
                        baseline=0.0,
                        current=float(u["ii_gap"]),
                    )
                )
    return regressions


def render_oracle_gap_gate(regressions: list[Regression]) -> str:
    if not regressions:
        return "oracle gate: OK (zero gap on every certified loop)"
    lines = [f"oracle gate: {len(regressions)} certified gap(s)"]
    lines += [f"  {r.render()}" for r in regressions]
    return "\n".join(lines)
