"""Loop transformation (paper Section 3.3).

Given a partition assignment, construct the transformed loop:

* operations in the vector partition are replaced with vector opcodes;
* scalar operations are emitted ``k`` times (``k`` = vector length),
  which also implements the unroll-by-``k`` baseline when no operation is
  vectorized;
* strongly connected components are emitted in topological order, with a
  component's operations in original program order — the in-place
  analogue of traditional vectorization's loop distribution;
* explicit transfer operations move operands between partitions through
  scratch memory (one transfer per operand; all consumers reuse it);
* misaligned vector memory references receive a merge operation, with the
  previous iteration's aligned chunk carried in a vector register (the
  reuse scheme of [13, 40]);
* the loop increment is adjusted to the vector length and a cleanup loop
  handles residual iterations.

The emitted loop is *normalized*: its induction variable ``j`` advances by
one per body execution and each execution covers ``factor`` original
iterations, with subscripts rewritten accordingly (``c*i + o`` at original
iteration ``i = factor*j + lane`` becomes ``c*factor*j + (o + c*lane)``).
Normalization lets the same dependence analysis, scheduler, and
interpreter run unchanged on transformed loops.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field

from repro.dependence.analysis import LoopDependence
from repro.ir.loop import ArrayInfo, CarriedScalar, Loop
from repro.ir.operations import Operation, OpKind
from repro.ir.subscripts import AffineExpr, Subscript
from repro.ir.types import ScalarType, VectorType
from repro.ir.values import (
    Constant,
    Operand,
    VirtualRegister,
    lane_register,
    vector_register,
)
from repro.machine.machine import CommunicationModel, MachineDescription
from repro.vectorize.alignment import reference_is_misaligned
from repro.vectorize.communication import Side

SCRATCH_PREFIX = "xfer."
DEFAULT_SCRATCH_ELEMS = 1 << 14


@dataclass(frozen=True)
class LiveOut:
    """Where an original live-out value lives in the transformed loop.

    ``combine`` (set by reduction vectorization) means the register is a
    vector of partial accumulations whose lanes must be folded with the
    named carried scalar's pre-loop value to produce the final result."""

    register: VirtualRegister
    lane: int | None = None  # set when the value is a lane of a vector register
    combine: OpKind | None = None
    combine_entry: str | None = None


@dataclass
class TransformResult:
    """A transformed (or merely lowered) loop plus bookkeeping."""

    loop: Loop
    cleanup: Loop | None
    factor: int
    liveout_map: dict[str, LiveOut]
    cleanup_liveout_map: dict[str, LiveOut] | None
    n_vector_ops: int = 0
    n_transfers: int = 0
    n_merges: int = 0
    # original carried-entry name -> (reduction kind, vector accumulator
    # entry name); set by reduction vectorization (Section 6 extension)
    reduction_combines: dict[str, tuple[OpKind, str]] = field(default_factory=dict)
    # the loop the transform consumed, for translation validation;
    # None when the producing pass cannot state one (the checker then
    # skips vectorize-stage obligations with an INFO finding)
    source: Loop | None = None

    @property
    def vectorized(self) -> bool:
        return self.n_vector_ops > 0


def ordered_components(dep: LoopDependence) -> list[list[int]]:
    """SCCs in topological (sources-first) order, each component's members
    in original program order; ties broken by body position."""
    body_index = {op.uid: i for i, op in enumerate(dep.loop.body)}
    n = len(dep.sccs)
    succs: list[set[int]] = [set() for _ in range(n)]
    preds_count = [0] * n
    for edge in dep.graph.edges:
        a, b = dep.scc_of[edge.src], dep.scc_of[edge.dst]
        if a != b and b not in succs[a]:
            succs[a].add(b)
            preds_count[b] += 1

    import heapq

    def scc_key(i: int) -> int:
        return min(body_index[uid] for uid in dep.sccs[i])

    ready = [(scc_key(i), i) for i in range(n) if preds_count[i] == 0]
    heapq.heapify(ready)
    order: list[int] = []
    while ready:
        _, i = heapq.heappop(ready)
        order.append(i)
        for j in succs[i]:
            preds_count[j] -= 1
            if preds_count[j] == 0:
                heapq.heappush(ready, (scc_key(j), j))
    if len(order) != n:
        raise RuntimeError("dependence condensation is not acyclic")
    return [sorted(dep.sccs[i], key=body_index.__getitem__) for i in order]


def _topo_by_intra_edges(
    dep: LoopDependence, members: list[int]
) -> list[int]:
    """Order a component's members so zero-distance edges go forward;
    ties follow program order.  (The zero-distance subgraph of an SCC is
    acyclic — a zero-distance cycle would be unschedulable.)"""
    body_index = {op.uid: i for i, op in enumerate(dep.loop.body)}
    member_set = set(members)
    import heapq

    preds_count = {uid: 0 for uid in members}
    succs: dict[int, list[int]] = {uid: [] for uid in members}
    for uid in members:
        for edge in dep.graph.successors(uid):
            if edge.distance == 0 and edge.dst in member_set and edge.dst != uid:
                succs[uid].append(edge.dst)
                preds_count[edge.dst] += 1
    ready = [(body_index[uid], uid) for uid in members if preds_count[uid] == 0]
    heapq.heapify(ready)
    order: list[int] = []
    while ready:
        _, uid = heapq.heappop(ready)
        order.append(uid)
        for v in succs[uid]:
            preds_count[v] -= 1
            if preds_count[v] == 0:
                heapq.heappush(ready, (body_index[v], v))
    if len(order) != len(members):
        raise RuntimeError("zero-distance cycle inside a dependence component")
    return order


class _Emitter:
    """Emits the transformed loop body for one partition assignment."""

    def __init__(
        self,
        dep: LoopDependence,
        machine: MachineDescription,
        assignment: dict[int, Side],
        factor: int,
        suffix: str,
        scratch_elems: int = DEFAULT_SCRATCH_ELEMS,
        vector_width: int | None = None,
        force_misaligned: bool = False,
    ):
        self.dep = dep
        self.loop = dep.loop
        self.machine = machine
        self.assignment = assignment
        self.factor = factor
        self.suffix = suffix
        self.scratch_elems = scratch_elems
        # Vector operations normally cover all `factor` lanes; the
        # whole-iteration-assignment extension (paper Section 6) emits
        # narrower vector ops plus scalar iterations on the side.
        self.vector_width = vector_width if vector_width is not None else factor
        self.force_misaligned = force_misaligned

        self.body: list[Operation] = []
        self.preheader: list[Operation] = list(self.loop.preheader)
        self.arrays: dict[str, ArrayInfo] = dict(self.loop.arrays)
        self.carried: list[CarriedScalar] = []

        self.def_op: dict[VirtualRegister, Operation] = {
            op.dest: op for op in self.loop.body if op.dest is not None
        }
        self.carried_by_entry = {c.entry: c for c in self.loop.carried}
        self.lane_defs: dict[tuple[int, int], VirtualRegister] = {}
        self.vector_defs: dict[int, VirtualRegister] = {}
        self._packed: dict[object, VirtualRegister] = {}
        self._unpacked: dict[int, list[VirtualRegister]] = {}
        self._splats: dict[str, VirtualRegister] = {}
        self._fresh = itertools.count()

        self.n_vector_ops = 0
        self.n_transfers = 0
        self.n_merges = 0

    # ------------------------------------------------------------------
    # Subscript rewriting into normalized j-space.

    def _lane_subscript(self, sub: Subscript, lane: int) -> Subscript:
        return Subscript(
            tuple(
                AffineExpr(d.coeff * self.factor, d.offset + d.coeff * lane, d.symbols)
                for d in sub.dims
            )
        )

    def _vector_subscript(self, sub: Subscript) -> Subscript:
        # Unit-stride references only: lane 0 of the vector access.
        return self._lane_subscript(sub, 0)

    # ------------------------------------------------------------------
    # Operand mapping.

    def scalar_operand(self, src: Operand, lane: int) -> Operand:
        if isinstance(src, Constant):
            return src
        producer = self.def_op.get(src)
        if producer is not None:
            # Whole-iteration assignment emits vector ops *and* scalar
            # replicas for the extra lanes; prefer the direct lane copy.
            if (producer.uid, lane) in self.lane_defs:
                return self.lane_defs[(producer.uid, lane)]
            if producer.uid in self.vector_defs:
                return self.unpack(producer)[lane]
            return self.lane_defs[(producer.uid, lane)]
        carried = self.carried_by_entry.get(src)
        if carried is not None:
            return self.carried_value(carried, lane)
        return src  # loop invariant (preheader-defined)

    def carried_value(self, carried: CarriedScalar, lane: int) -> Operand:
        if lane == 0:
            return carried.entry
        if isinstance(carried.exit, Constant):
            return carried.exit
        if carried.exit == carried.entry:
            return carried.entry
        return self.scalar_operand(carried.exit, lane - 1)

    def vector_operand(self, src: Operand) -> Operand:
        if isinstance(src, Constant):
            return src  # immediate: broadcast by the vector unit
        producer = self.def_op.get(src)
        if producer is not None:
            if producer.uid in self.vector_defs:
                return self.vector_defs[producer.uid]
            values = [
                self.lane_defs[(producer.uid, l)]
                for l in range(self.vector_width)
            ]
            return self.pack(producer.uid, src.name, values, producer.dtype)
        carried = self.carried_by_entry.get(src)
        if carried is not None:
            if carried.exit == carried.entry:
                return self.splat(src)  # never updated: loop invariant
            values = [
                self.carried_value(carried, l)
                for l in range(self.vector_width)
            ]
            dtype = src.type
            assert isinstance(dtype, ScalarType)
            return self.pack(("carried", src.name), src.name, values, dtype)
        return self.splat(src)  # loop invariant

    # ------------------------------------------------------------------
    # Transfers.

    def _scratch(self, name: str, dtype: ScalarType) -> str:
        array = f"{SCRATCH_PREFIX}{name}"
        if array not in self.arrays:
            self.arrays[array] = ArrayInfo(
                array, dtype, (self.scratch_elems,), alignment_offset=0
            )
        return array

    def pack(
        self,
        key: object,
        name: str,
        values: list[Operand],
        dtype: ScalarType,
    ) -> VirtualRegister:
        """Scalar -> vector transfer: VL scalar stores + one vector load,
        or a free register move on machines with an operand network."""
        if key in self._packed:
            return self._packed[key]
        if self.machine.communication is CommunicationModel.FREE:
            dest = VirtualRegister(
                f"{name}.pk", VectorType(dtype, self.vector_width)
            )
            self.body.append(
                Operation(
                    OpKind.PACK,
                    dtype,
                    dest=dest,
                    srcs=tuple(values),
                    is_vector=True,
                )
            )
            self._packed[key] = dest
            self.n_transfers += 1
            return dest
        array = self._scratch(name, dtype)
        for lane, value in enumerate(values):
            self.body.append(
                Operation(
                    OpKind.STORE,
                    dtype,
                    srcs=(value,),
                    array=array,
                    subscript=Subscript((AffineExpr(self.factor, lane),)),
                )
            )
        dest = VirtualRegister(
            f"{name}.pk", VectorType(dtype, self.vector_width)
        )
        self.body.append(
            Operation(
                OpKind.LOAD,
                dtype,
                dest=dest,
                array=array,
                subscript=Subscript((AffineExpr(self.factor, 0),)),
                is_vector=True,
            )
        )
        self._packed[key] = dest
        self.n_transfers += 1
        return dest

    def unpack(self, producer: Operation) -> list[VirtualRegister]:
        """Vector -> scalar transfer: one vector store + VL scalar loads,
        or free lane extracts on machines with an operand network."""
        if producer.uid in self._unpacked:
            return self._unpacked[producer.uid]
        vreg = self.vector_defs[producer.uid]
        dtype = producer.dtype
        assert producer.dest is not None
        if self.machine.communication is CommunicationModel.FREE:
            lanes = []
            for lane in range(self.vector_width):
                dest = VirtualRegister(f"{producer.dest.name}.up{lane}", dtype)
                self.body.append(
                    Operation(
                        OpKind.EXTRACT,
                        dtype,
                        dest=dest,
                        srcs=(vreg,),
                        lane=lane,
                    )
                )
                lanes.append(dest)
            self._unpacked[producer.uid] = lanes
            self.n_transfers += 1
            return lanes
        array = self._scratch(producer.dest.name, dtype)
        self.body.append(
            Operation(
                OpKind.STORE,
                dtype,
                srcs=(vreg,),
                array=array,
                subscript=Subscript((AffineExpr(self.factor, 0),)),
                is_vector=True,
            )
        )
        lanes: list[VirtualRegister] = []
        for lane in range(self.vector_width):
            dest = VirtualRegister(f"{producer.dest.name}.up{lane}", dtype)
            self.body.append(
                Operation(
                    OpKind.LOAD,
                    dtype,
                    dest=dest,
                    array=array,
                    subscript=Subscript((AffineExpr(self.factor, lane),)),
                )
            )
            lanes.append(dest)
        self._unpacked[producer.uid] = lanes
        self.n_transfers += 1
        return lanes

    def splat(self, src: VirtualRegister) -> VirtualRegister:
        """Broadcast a loop-invariant scalar once, in the preheader."""
        if src.name in self._splats:
            return self._splats[src.name]
        dtype = src.type
        assert isinstance(dtype, ScalarType)
        dest = VirtualRegister(
            f"{src.name}.sp", VectorType(dtype, self.vector_width)
        )
        self.preheader.append(
            Operation(OpKind.COPY, dtype, dest=dest, srcs=(src,), is_vector=True)
        )
        self._splats[src.name] = dest
        return dest

    # ------------------------------------------------------------------
    # Operation emission.

    def emit_scalar(self, op: Operation, lane: int) -> None:
        srcs = tuple(self.scalar_operand(s, lane) for s in op.srcs)
        dest = lane_register(op.dest, lane) if op.dest is not None else None
        subscript = (
            self._lane_subscript(op.subscript, lane)
            if op.subscript is not None
            else None
        )
        emitted = Operation(
            op.kind,
            op.dtype,
            dest=dest,
            srcs=srcs,
            array=op.array,
            subscript=subscript,
            origin=op.uid,
            lane=lane,
        )
        self.body.append(emitted)
        if dest is not None:
            self.lane_defs[(op.uid, lane)] = dest

    def emit_vector(self, op: Operation) -> None:
        self.n_vector_ops += 1
        if op.kind.is_memory:
            self._emit_vector_memory(op)
            return
        srcs = tuple(self.vector_operand(s) for s in op.srcs)
        assert op.dest is not None
        dest = vector_register(op.dest, self.vector_width)
        self.body.append(
            Operation(
                op.kind,
                op.dtype,
                dest=dest,
                srcs=srcs,
                is_vector=True,
                origin=op.uid,
            )
        )
        self.vector_defs[op.uid] = dest

    def _emit_vector_memory(self, op: Operation) -> None:
        assert op.subscript is not None and op.array is not None
        sub = self._vector_subscript(op.subscript)
        misaligned = self.force_misaligned or (
            self.machine.needs_alignment_merges
            and reference_is_misaligned(self.machine, self.loop, op)
        )
        vtype = VectorType(op.dtype, self.vector_width)

        if op.is_load:
            assert op.dest is not None
            final = vector_register(op.dest, self.vector_width)
            if misaligned:
                raw = VirtualRegister(f"{op.dest.name}.al", vtype)
                self.body.append(
                    Operation(
                        OpKind.LOAD,
                        op.dtype,
                        dest=raw,
                        array=op.array,
                        subscript=sub,
                        is_vector=True,
                        origin=op.uid,
                    )
                )
                prev = VirtualRegister(f"{op.dest.name}.prev", vtype)
                self.body.append(
                    Operation(
                        OpKind.MERGE,
                        op.dtype,
                        dest=final,
                        srcs=(raw, prev),
                        is_vector=True,
                        origin=op.uid,
                    )
                )
                self.carried.append(CarriedScalar(prev, raw, 0.0))
                self.n_merges += 1
            else:
                self.body.append(
                    Operation(
                        OpKind.LOAD,
                        op.dtype,
                        dest=final,
                        array=op.array,
                        subscript=sub,
                        is_vector=True,
                        origin=op.uid,
                    )
                )
            self.vector_defs[op.uid] = final
            return

        value = self.vector_operand(op.stored_value)
        if misaligned:
            merged = VirtualRegister(f"st{next(self._fresh)}.mg", vtype)
            prev = VirtualRegister(f"st{next(self._fresh)}.prev", vtype)
            self.body.append(
                Operation(
                    OpKind.MERGE,
                    op.dtype,
                    dest=merged,
                    srcs=(value, prev),
                    is_vector=True,
                    origin=op.uid,
                )
            )
            self.carried.append(CarriedScalar(prev, value, 0.0))
            self.n_merges += 1
            value = merged
        self.body.append(
            Operation(
                OpKind.STORE,
                op.dtype,
                srcs=(value,),
                array=op.array,
                subscript=sub,
                is_vector=True,
                origin=op.uid,
            )
        )

    # ------------------------------------------------------------------

    def emit_component(self, members: list[int]) -> None:
        ops = [self.loop.op_by_uid(uid) for uid in members]
        has_vector = any(
            self.assignment[uid] is Side.VECTOR for uid in members
        )
        if not has_vector:
            # Pure scalar component: interleave lanes across operations so
            # per-lane execution matches the original sequential order —
            # required for recurrences threading through carried scalars.
            for lane in range(self.factor):
                for op in ops:
                    self.emit_scalar(op, lane)
            return
        # Component with vector members: all carried edges inside span at
        # least VL original iterations, so lanes of a scalar member are
        # mutually independent within one transformed iteration.  Emit in
        # zero-distance topological order; scalar members as lane groups.
        for uid in _topo_by_intra_edges(self.dep, members):
            op = self.loop.op_by_uid(uid)
            if self.assignment[uid] is Side.VECTOR:
                self.emit_vector(op)
            else:
                for lane in range(self.factor):
                    self.emit_scalar(op, lane)

    def emit_overhead(self) -> None:
        if not self.machine.model_loop_overhead:
            return
        original_arrays = sorted(
            {
                op.array
                for op in self.body
                if op.kind.is_memory
                and op.array is not None
                and not op.array.startswith(SCRATCH_PREFIX)
            }
        )
        for array in original_arrays:
            dest = VirtualRegister(f"ptr.{array}", ScalarType.I64)
            self.body.append(Operation(OpKind.BUMP, ScalarType.I64, dest=dest))
        self.body.append(
            Operation(
                OpKind.IVINC,
                ScalarType.I64,
                dest=VirtualRegister("iv.next", ScalarType.I64),
            )
        )
        self.body.append(Operation(OpKind.CBR, ScalarType.I64))

    def finalize_carried(self) -> None:
        for c in self.loop.carried:
            if isinstance(c.exit, Constant) or c.exit == c.entry:
                exit_value: Operand = c.exit
            else:
                exit_value = self.scalar_operand(c.exit, self.factor - 1)
            self.carried.append(CarriedScalar(c.entry, exit_value, c.init))

    def liveout_map(self) -> dict[str, LiveOut]:
        mapping: dict[str, LiveOut] = {}
        for reg in self.loop.live_out:
            producer = self.def_op.get(reg)
            if producer is not None:
                if producer.uid in self.vector_defs:
                    mapping[reg.name] = LiveOut(
                        self.vector_defs[producer.uid], lane=self.factor - 1
                    )
                else:
                    mapping[reg.name] = LiveOut(
                        self.lane_defs[(producer.uid, self.factor - 1)]
                    )
            else:
                mapping[reg.name] = LiveOut(reg)
        return mapping

    def build(self) -> tuple[Loop, dict[str, LiveOut]]:
        for component in ordered_components(self.dep):
            self.emit_component(component)
        self.finalize_carried()
        mapping = self.liveout_map()
        self.emit_overhead()
        live_out = tuple(
            dict.fromkeys(
                spec.register for spec in mapping.values()
            )
        )
        loop = Loop(
            name=f"{self.loop.name}{self.suffix}",
            body=tuple(self.body),
            arrays=self.arrays,
            carried=tuple(self.carried),
            live_out=live_out,
            preheader=tuple(self.preheader),
            increment=self.factor,
            symbols=dict(self.loop.symbols),
        )
        return loop, mapping


def transform_loop(
    dep: LoopDependence,
    machine: MachineDescription,
    assignment: dict[int, Side],
    factor: int,
    suffix: str = ".xf",
    scratch_elems: int = DEFAULT_SCRATCH_ELEMS,
) -> TransformResult:
    """Apply a partition assignment, producing the main transformed loop
    (normalized to ``factor`` original iterations per execution) and, when
    ``factor > 1``, the cleanup loop for residual iterations."""
    loop = dep.loop
    if any(side is Side.VECTOR for side in assignment.values()) and factor not in (
        machine.vector_length,
    ):
        raise ValueError("vectorized transformation requires factor == VL")
    for op in loop.body:
        if op.uid not in assignment:
            raise ValueError(f"assignment missing for {op}")
        if assignment[op.uid] is Side.VECTOR and not dep.is_vectorizable(op):
            raise ValueError(f"operation {op} is not vectorizable")

    emitter = _Emitter(dep, machine, assignment, factor, suffix, scratch_elems)
    main_loop, liveout = emitter.build()

    from repro.ir.verifier import verify_loop

    verify_loop(main_loop)

    cleanup: Loop | None = None
    cleanup_liveout: dict[str, LiveOut] | None = None
    if factor > 1:
        scalar_assignment = {op.uid: Side.SCALAR for op in loop.body}
        cleanup_emitter = _Emitter(
            dep, machine, scalar_assignment, 1, ".cl", scratch_elems
        )
        cleanup, cleanup_liveout = cleanup_emitter.build()
        verify_loop(cleanup)

    return TransformResult(
        loop=main_loop,
        cleanup=cleanup,
        factor=factor,
        liveout_map=liveout,
        cleanup_liveout_map=cleanup_liveout,
        n_vector_ops=emitter.n_vector_ops,
        n_transfers=emitter.n_transfers,
        n_merges=emitter.n_merges,
        source=dep.loop,
    )
