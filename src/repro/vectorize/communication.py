"""Scalar<->vector operand communication.

On the modeled machine (as in the paper) there is no direct move between
scalar and vector register files: a vector-to-scalar transfer is one
vector store followed by ``VL`` scalar loads from a scratch buffer, and a
scalar-to-vector transfer is ``VL`` scalar stores followed by one vector
load.  A given operand is transferred *at most once* per iteration — all
consumers reuse the transferred copy (paper Section 3.2).

This module computes which transfers a partition assignment implies.  The
same information drives both the partitioner's cost accounting and the
loop transformer's transfer-code emission.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.dependence.analysis import LoopDependence
from repro.dependence.graph import DepKind, Via
from repro.ir.operations import Operation
from repro.ir.types import ScalarType
from repro.ir.values import VirtualRegister
from repro.machine.machine import CommunicationModel, MachineDescription
from repro.machine.resources import OpcodeInfo


class Side(enum.Enum):
    SCALAR = "scalar"
    VECTOR = "vector"

    def flipped(self) -> Side:
        return Side.VECTOR if self is Side.SCALAR else Side.SCALAR


@dataclass(frozen=True)
class Transfer:
    """One operand crossing between partitions each iteration.

    ``producer`` is the defining operation's uid, or a carried-scalar
    entry name for values entering the iteration from the previous one
    (``kind == "carried"``).
    """

    key: object
    dtype: ScalarType
    to_vector: bool

    def __str__(self) -> str:
        direction = "scalar->vector" if self.to_vector else "vector->scalar"
        return f"transfer({self.key}, {direction}, {self.dtype})"


@dataclass
class Dataflow:
    """Register dataflow summary used for communication decisions."""

    # producer uid -> uids of body operations consuming its value
    consumers: dict[int, list[int]]
    # carried entry register -> uids of body operations reading it
    carried_consumers: dict[VirtualRegister, list[int]]
    producer_dtype: dict[int, ScalarType]
    # carried entries whose value never changes (loop-invariant parameters)
    constant_carried: set[VirtualRegister]


def dataflow_of(dep: LoopDependence) -> Dataflow:
    """Extract the producer->consumers map from the dependence graph."""
    consumers: dict[int, list[int]] = {}
    producer_dtype: dict[int, ScalarType] = {}
    for op in dep.loop.body:
        if op.dest is not None:
            consumers[op.uid] = []
            producer_dtype[op.uid] = op.dtype
    for edge in dep.graph.edges:
        if edge.kind is not DepKind.FLOW or edge.via is not Via.REGISTER:
            continue
        if edge.src in consumers:
            consumers[edge.src].append(edge.dst)

    carried_consumers: dict[VirtualRegister, list[int]] = {}
    entries = dep.loop.carried_entries()
    for op in dep.loop.body:
        for src in op.registers_read():
            if src in entries:
                carried_consumers.setdefault(src, []).append(op.uid)
    constant_carried = {c.entry for c in dep.loop.carried if c.exit == c.entry}
    return Dataflow(consumers, carried_consumers, producer_dtype, constant_carried)


def transfers_for(
    dataflow: Dataflow,
    assignment: dict[int, Side],
) -> list[Transfer]:
    """All per-iteration transfers implied by ``assignment``."""
    transfers: list[Transfer] = []
    for producer, consumer_ids in dataflow.consumers.items():
        side = assignment[producer]
        crossing = [c for c in consumer_ids if assignment[c] is not side]
        if crossing:
            transfers.append(
                Transfer(
                    key=producer,
                    dtype=dataflow.producer_dtype[producer],
                    to_vector=(side is Side.SCALAR),
                )
            )
    for entry, consumer_ids in dataflow.carried_consumers.items():
        # Carried entries are scalar values; vector consumers need a pack
        # every iteration — unless the value never changes (exit == entry),
        # in which case a one-time preheader splat suffices (free here).
        if entry in dataflow.constant_carried:
            continue
        if any(assignment[c] is Side.VECTOR for c in consumer_ids):
            dtype = entry.type
            assert isinstance(dtype, ScalarType)
            transfers.append(
                Transfer(key=("carried", entry.name), dtype=dtype, to_vector=True)
            )
    return transfers


def transfer_keys_touching(dataflow: Dataflow, op: Operation) -> set[object]:
    """Transfer keys whose existence can change when ``op`` is
    repartitioned: ``op``'s own operand plus each value ``op`` consumes."""
    keys: set[object] = set()
    if op.dest is not None and op.uid in dataflow.consumers:
        keys.add(op.uid)
    for producer, consumer_ids in dataflow.consumers.items():
        if op.uid in consumer_ids:
            keys.add(producer)
    for entry, consumer_ids in dataflow.carried_consumers.items():
        if op.uid in consumer_ids:
            keys.add(("carried", entry.name))
    return keys


def transfer_for_key(
    dataflow: Dataflow,
    assignment: dict[int, Side],
    key: object,
) -> Transfer | None:
    """The transfer (if any) implied by ``assignment`` for one operand key."""
    if isinstance(key, tuple) and key and key[0] == "carried":
        for entry, consumer_ids in dataflow.carried_consumers.items():
            if entry.name == key[1]:
                if entry in dataflow.constant_carried:
                    return None
                if any(assignment[c] is Side.VECTOR for c in consumer_ids):
                    dtype = entry.type
                    assert isinstance(dtype, ScalarType)
                    return Transfer(key=key, dtype=dtype, to_vector=True)
                return None
        return None
    assert isinstance(key, int)
    consumer_ids = dataflow.consumers.get(key, [])
    side = assignment[key]
    if any(assignment[c] is not side for c in consumer_ids):
        return Transfer(
            key=key,
            dtype=dataflow.producer_dtype[key],
            to_vector=(side is Side.SCALAR),
        )
    return None


def transfer_cost_opcodes(
    machine: MachineDescription, transfer: Transfer
) -> list[OpcodeInfo]:
    """The machine opcodes one transfer costs per iteration."""
    if machine.communication is CommunicationModel.FREE:
        return []
    ops = machine.transfer_opcodes(transfer.dtype, transfer.to_vector)
    return [machine.opcode_info_for(kind, dtype, vec) for kind, dtype, vec in ops]
