"""Resource bins for partition cost evaluation (Figure 2, lines 33-70).

A bin is associated with each compiler-visible resource *instance* (each
member of a resource class is a scheduling alternative).  Reserving an
opcode places one unit of work on the least-used alternative of every
resource class the opcode requires; multi-cycle reservations (divides)
add their full busy time.  The cost of a configuration is the high-water
mark — the weight of the most heavily used bin — which equals the
resource-constrained minimum initiation interval (ResMII) of the modulo
schedule that will follow.

Two details from the paper are implemented exactly:

* When two alternatives leave the high-water mark unchanged, the one that
  minimizes the *sum of squared bin weights* is chosen (lines 53-65).
  This balances load across bins, which is what makes the incremental
  release-and-reserve cost probes of ``TEST-REPARTITION`` accurate.
* Reservations are remembered per key so they can be released exactly
  (``RELEASE-RESOURCES``), including communication overhead.

Performance notes (the partitioner's ``TEST-REPARTITION`` is the hottest
loop in the compiler):

* the sum of squares is maintained incrementally (``O(1)`` per weight
  change instead of a scan per tie-break candidate);
* the high-water mark is cached and only recomputed after a release
  could have lowered it;
* :meth:`checkpoint` / :meth:`rollback` journal every reserve/release so
  a cost probe can mutate the live bins and undo exactly, replacing the
  full-ledger deep copy per probe.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.machine.machine import MachineDescription
from repro.machine.resources import OpcodeInfo


@dataclass
class Bins:
    """Weights per resource instance plus a reservation ledger."""

    machine: MachineDescription
    weights: dict[str, int] = field(default_factory=dict)
    reservations: dict[object, list[tuple[str, int]]] = field(default_factory=dict)
    # The paper's squared-weight tie-break (lines 53-65).  Disabling it
    # (first-fit among equal high-water alternatives) is the bin-packing
    # ablation: released-resource cost probes become less accurate.
    balance_ties: bool = True

    def __post_init__(self) -> None:
        if not self.weights:
            for rc in self.machine.resources:
                for instance in rc.instances():
                    self.weights[instance] = 0
        self._sum_sq = sum(w * w for w in self.weights.values())
        self._hwm = max(self.weights.values(), default=0)
        self._hwm_dirty = False
        # Undo journal: None when no checkpoint is active (mutations are
        # then unrecorded), else a list of undo entries.
        self._journal: list[tuple[str, object, object]] | None = None

    def copy(self) -> Bins:
        clone = Bins(self.machine, dict(self.weights), balance_ties=self.balance_ties)
        clone.reservations = {k: list(v) for k, v in self.reservations.items()}
        return clone

    # ------------------------------------------------------------------

    def high_water_mark(self) -> int:
        if self._hwm_dirty:
            self._hwm = max(self.weights.values(), default=0)
            self._hwm_dirty = False
        return self._hwm

    def sum_of_squares(self) -> int:
        return self._sum_sq

    def _add_weight(self, instance: str, delta: int) -> None:
        old = self.weights[instance]
        new = old + delta
        self.weights[instance] = new
        self._sum_sq += new * new - old * old
        if delta > 0:
            if not self._hwm_dirty and new > self._hwm:
                self._hwm = new
        elif not self._hwm_dirty and old == self._hwm:
            # The (possibly unique) maximum shrank; recompute lazily.
            self._hwm_dirty = True

    # ------------------------------------------------------------------
    # Checkpoint / rollback (apply-undo delta protocol)

    def checkpoint(self) -> int:
        """Start (or nest within) an undoable region; returns a mark to
        pass to :meth:`rollback`.  Journaling stays active until the
        outermost mark is rolled back."""
        if self._journal is None:
            self._journal = []
        return len(self._journal)

    def rollback(self, mark: int = 0) -> None:
        """Undo every reserve/release journaled after ``mark``."""
        journal = self._journal
        if journal is None:
            raise RuntimeError("rollback without an active checkpoint")
        while len(journal) > mark:
            kind, key, payload = journal.pop()
            if kind == "reserve":
                appended, created = payload
                entries = self.reservations[key]
                for _ in range(appended):
                    instance, cycles = entries.pop()
                    self._add_weight(instance, -cycles)
                if created:
                    del self.reservations[key]
            else:  # "release"
                entries = payload
                self.reservations[key] = entries
                for instance, cycles in entries:
                    self._add_weight(instance, cycles)
        if mark == 0:
            self._journal = None

    # ------------------------------------------------------------------

    def reserve_least_used(self, opcode: OpcodeInfo, key: object) -> None:
        """Reserve ``opcode``'s resources on least-used alternatives,
        recording the choice under ``key`` for later release."""
        created = key not in self.reservations
        ledger = self.reservations.setdefault(key, [])
        appended = 0
        weights = self.weights
        for use in opcode.uses:
            rc = self.machine.resource_class(use.resource)
            best_instance: str | None = None
            best_high = None
            best_cost = None
            hwm = self.high_water_mark()
            for instance in rc.instances():
                old = weights[instance]
                new_weight = old + use.cycles
                high = hwm if hwm > new_weight else new_weight
                # Incremental sum of squares: only this bin changes, and
                # the shared total cancels in comparisons.
                cost = (
                    new_weight * new_weight - old * old
                    if self.balance_ties
                    else 0
                )
                if (
                    best_high is None
                    or high < best_high
                    or (high == best_high and cost < best_cost)
                ):
                    best_high = high
                    best_cost = cost
                    best_instance = instance
            assert best_instance is not None
            self._add_weight(best_instance, use.cycles)
            ledger.append((best_instance, use.cycles))
            appended += 1
        if self._journal is not None and (appended or created):
            self._journal.append(("reserve", key, (appended, created)))

    def reserve_all(self, opcodes: list[OpcodeInfo], key: object) -> None:
        for opcode in opcodes:
            self.reserve_least_used(opcode, key)

    def release(self, key: object) -> None:
        """Release every reservation recorded under ``key``."""
        entries = self.reservations.pop(key, [])
        for instance, cycles in entries:
            self._add_weight(instance, -cycles)
            if self.weights[instance] < 0:
                raise RuntimeError(f"bin {instance} released below zero")
        if self._journal is not None and entries:
            self._journal.append(("release", key, entries))

    def has_key(self, key: object) -> bool:
        return key in self.reservations

    def __str__(self) -> str:
        parts = [f"{k}={v}" for k, v in sorted(self.weights.items())]
        return "bins[" + ", ".join(parts) + f"] hwm={self.high_water_mark()}"


def placement_freedom(machine: MachineDescription, opcode: OpcodeInfo) -> int:
    """Number of placement alternatives for an opcode — the ordering key
    for bin-packing (fewest alternatives packed first, as in iterative
    modulo scheduling's original formulation)."""
    freedom = 1
    for use in opcode.uses:
        freedom *= machine.resource_class(use.resource).count
    return freedom
