"""Resource bins for partition cost evaluation (Figure 2, lines 33-70).

A bin is associated with each compiler-visible resource *instance* (each
member of a resource class is a scheduling alternative).  Reserving an
opcode places one unit of work on the least-used alternative of every
resource class the opcode requires; multi-cycle reservations (divides)
add their full busy time.  The cost of a configuration is the high-water
mark — the weight of the most heavily used bin — which equals the
resource-constrained minimum initiation interval (ResMII) of the modulo
schedule that will follow.

Two details from the paper are implemented exactly:

* When two alternatives leave the high-water mark unchanged, the one that
  minimizes the *sum of squared bin weights* is chosen (lines 53-65).
  This balances load across bins, which is what makes the incremental
  release-and-reserve cost probes of ``TEST-REPARTITION`` accurate.
* Reservations are remembered per key so they can be released exactly
  (``RELEASE-RESOURCES``), including communication overhead.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.machine.machine import MachineDescription
from repro.machine.resources import OpcodeInfo


@dataclass
class Bins:
    """Weights per resource instance plus a reservation ledger."""

    machine: MachineDescription
    weights: dict[str, int] = field(default_factory=dict)
    reservations: dict[object, list[tuple[str, int]]] = field(default_factory=dict)
    # The paper's squared-weight tie-break (lines 53-65).  Disabling it
    # (first-fit among equal high-water alternatives) is the bin-packing
    # ablation: released-resource cost probes become less accurate.
    balance_ties: bool = True

    def __post_init__(self) -> None:
        if not self.weights:
            for rc in self.machine.resources:
                for instance in rc.instances():
                    self.weights[instance] = 0

    def copy(self) -> Bins:
        clone = Bins(self.machine, dict(self.weights), balance_ties=self.balance_ties)
        clone.reservations = {k: list(v) for k, v in self.reservations.items()}
        return clone

    # ------------------------------------------------------------------

    def high_water_mark(self) -> int:
        return max(self.weights.values(), default=0)

    def sum_of_squares(self) -> int:
        return sum(w * w for w in self.weights.values())

    # ------------------------------------------------------------------

    def reserve_least_used(self, opcode: OpcodeInfo, key: object) -> None:
        """Reserve ``opcode``'s resources on least-used alternatives,
        recording the choice under ``key`` for later release."""
        ledger = self.reservations.setdefault(key, [])
        for use in opcode.uses:
            rc = self.machine.resource_class(use.resource)
            best_instance: str | None = None
            best_high = None
            best_cost = None
            for instance in rc.instances():
                new_weight = self.weights[instance] + use.cycles
                high = max(self.high_water_mark(), new_weight)
                # Incremental sum of squares: only this bin changes.
                old = self.weights[instance]
                cost = (
                    self.sum_of_squares() - old * old + new_weight * new_weight
                    if self.balance_ties
                    else 0
                )
                if (
                    best_high is None
                    or high < best_high
                    or (high == best_high and cost < best_cost)
                ):
                    best_high = high
                    best_cost = cost
                    best_instance = instance
            assert best_instance is not None
            self.weights[best_instance] += use.cycles
            ledger.append((best_instance, use.cycles))

    def reserve_all(self, opcodes: list[OpcodeInfo], key: object) -> None:
        for opcode in opcodes:
            self.reserve_least_used(opcode, key)

    def release(self, key: object) -> None:
        """Release every reservation recorded under ``key``."""
        for instance, cycles in self.reservations.pop(key, []):
            self.weights[instance] -= cycles
            if self.weights[instance] < 0:
                raise RuntimeError(f"bin {instance} released below zero")

    def has_key(self, key: object) -> bool:
        return key in self.reservations

    def __str__(self) -> str:
        parts = [f"{k}={v}" for k, v in sorted(self.weights.items())]
        return "bins[" + ", ".join(parts) + f"] hwm={self.high_water_mark()}"


def placement_freedom(machine: MachineDescription, opcode: OpcodeInfo) -> int:
    """Number of placement alternatives for an opcode — the ordering key
    for bin-packing (fewest alternatives packed first, as in iterative
    modulo scheduling's original formulation)."""
    freedom = 1
    for use in opcode.uses:
        freedom *= machine.resource_class(use.resource).count
    return freedom
