"""Vectorization: the selective partitioner (the paper's contribution)
plus the traditional and full vectorizer baselines and the shared loop
transformation engine."""

from repro.vectorize.alignment import merge_overhead_opcodes, reference_is_misaligned
from repro.vectorize.bins import Bins, placement_freedom
from repro.vectorize.communication import (
    Dataflow,
    Side,
    Transfer,
    dataflow_of,
    transfer_cost_opcodes,
    transfers_for,
)
from repro.vectorize.full import full_assignment, refine_isolated
from repro.vectorize.iteration_assign import whole_iteration_transform
from repro.vectorize.reduction import (
    RecognizedReduction,
    combine_lanes,
    reassociable_reductions,
    vectorize_reduction_loop,
)
from repro.vectorize.partition import (
    PartitionConfig,
    PartitionCostModel,
    PartitionResult,
    partition_operations,
)
from repro.vectorize.traditional import DistributedUnit, distribute_loop
from repro.vectorize.transform import (
    LiveOut,
    TransformResult,
    transform_loop,
)

__all__ = [
    "Bins",
    "Dataflow",
    "DistributedUnit",
    "RecognizedReduction",
    "combine_lanes",
    "reassociable_reductions",
    "vectorize_reduction_loop",
    "distribute_loop",
    "full_assignment",
    "refine_isolated",
    "whole_iteration_transform",
    "LiveOut",
    "PartitionConfig",
    "PartitionCostModel",
    "PartitionResult",
    "Side",
    "Transfer",
    "TransformResult",
    "dataflow_of",
    "merge_overhead_opcodes",
    "partition_operations",
    "placement_freedom",
    "reference_is_misaligned",
    "transfer_cost_opcodes",
    "transfers_for",
    "transform_loop",
]
