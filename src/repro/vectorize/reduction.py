"""Reduction vectorization (paper Section 6, future work).

The paper treats reductions as non-vectorizable because vectorizing
``s = s + x[i]`` reorders the additions — illegal for floating point
without permission.  Section 6 names *reduction recognition* as the loop
transformation the work would most benefit from: with reassociation
allowed, the reduction runs as ``VL`` independent partial accumulations
(a vector accumulator carried across iterations) that are combined once
when the loop completes.

This module implements that extension:

* :func:`reassociable_reductions` recognizes the pattern — a carried
  scalar whose dependence cycle is exactly one commutative operation
  (add / mul / min / max) reading the carried entry once;
* :func:`vectorize_reduction_loop` emits the transformed loop: the
  reduction becomes a vector operation on a carried vector accumulator
  initialized with the operation's identity element, everything else
  vectorizes as usual, and the live-out carries a *combine* tag telling
  the runtime to fold the accumulator lanes (and the original initial
  value) after the loop drains;
* the cleanup loop stays scalar and seeds from the combined value.

Because lanes accumulate independently, results can differ from the
sequential loop by floating-point reassociation — exactly the legality
caveat the paper raises.  The tests therefore compare against a
reassociated reference, and exactly for min/max/integer reductions.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.dependence.analysis import LoopDependence
from repro.ir.loop import CarriedScalar
from repro.ir.operations import Operation, OpKind
from repro.ir.types import ScalarType, VectorType
from repro.ir.values import Constant, Operand, VirtualRegister
from repro.machine.machine import MachineDescription
from repro.vectorize.communication import Side
from repro.vectorize.transform import (
    DEFAULT_SCRATCH_ELEMS,
    LiveOut,
    TransformResult,
    _Emitter,
    _topo_by_intra_edges,
)

_IDENTITY = {
    OpKind.ADD: 0,
    OpKind.MUL: 1,
    OpKind.MIN: float("inf"),
    OpKind.MAX: float("-inf"),
}


@dataclass(frozen=True)
class RecognizedReduction:
    """One reassociable reduction: the carried scalar and its operation."""

    carried: CarriedScalar
    op: Operation

    @property
    def kind(self) -> OpKind:
        return self.op.kind

    def identity(self) -> int | float:
        value = _IDENTITY[self.kind]
        if self.op.dtype.is_integer:
            if self.kind is OpKind.MIN:
                return 2**62
            if self.kind is OpKind.MAX:
                return -(2**62)
            return int(value)
        return float(value)


def reassociable_reductions(
    dep: LoopDependence,
) -> dict[VirtualRegister, RecognizedReduction]:
    """Carried scalars matching the reduction pattern, keyed by entry."""
    loop = dep.loop
    found: dict[VirtualRegister, RecognizedReduction] = {}
    for c in loop.carried:
        if not isinstance(c.exit, VirtualRegister) or c.exit == c.entry:
            continue
        op = loop.definition_of(c.exit)
        if op is None or op.kind not in _IDENTITY:
            continue
        if not isinstance(op.dtype, ScalarType):
            continue
        # the entry must feed exactly this op, exactly once
        readers = [
            body_op
            for body_op in loop.body
            for src in body_op.registers_read()
            if src == c.entry
        ]
        if readers != [op]:
            continue
        # the cycle must be exactly {op}: its other operand must not
        # depend on the accumulator
        members = dep.sccs[dep.scc_of[op.uid]]
        if len(members) != 1:
            continue
        # the accumulated value must not feed anything else in the body
        # (otherwise intermediate partial sums would be observed)
        consumers = [
            body_op
            for body_op in loop.body
            for src in body_op.registers_read()
            if src == c.exit
        ]
        if consumers:
            continue
        found[c.entry] = RecognizedReduction(c, op)
    return found


class _ReductionEmitter(_Emitter):
    """Standard vector emission, except recognized reductions become
    vector accumulations on carried vector registers."""

    def __init__(self, *args, reductions, **kwargs):
        super().__init__(*args, **kwargs)
        self.reductions: dict[VirtualRegister, RecognizedReduction] = reductions
        self._acc_regs: dict[int, VirtualRegister] = {}  # op uid -> vector acc

    def emit_component(self, members: list[int]) -> None:
        for uid in _topo_by_intra_edges(self.dep, members):
            op = self.loop.op_by_uid(uid)
            reduction = next(
                (r for r in self.reductions.values() if r.op.uid == uid), None
            )
            if reduction is not None:
                self._emit_reduction(reduction)
            elif self.assignment[uid] is Side.VECTOR:
                self.emit_vector(op)
            else:
                for lane in range(self.factor):
                    self.emit_scalar(op, lane)

    def _emit_reduction(self, reduction: RecognizedReduction) -> None:
        op = reduction.op
        entry = reduction.carried.entry
        vtype = VectorType(op.dtype, self.vector_width)
        prev = VirtualRegister(f"{entry.name}.acc", vtype)
        data = next(s for s in op.srcs if s != entry)
        data_vec = self.vector_operand(data)
        assert op.dest is not None
        dest = VirtualRegister(f"{op.dest.name}.accv", vtype)
        self.body.append(
            Operation(
                op.kind,
                op.dtype,
                dest=dest,
                srcs=(prev, data_vec),
                is_vector=True,
                origin=op.uid,
            )
        )
        self.carried.append(CarriedScalar(prev, dest, reduction.identity()))
        self.vector_defs[op.uid] = dest
        self._acc_regs[op.uid] = dest
        self.n_vector_ops += 1

    def finalize_carried(self) -> None:
        for c in self.loop.carried:
            if c.entry in self.reductions:
                continue  # replaced by the vector accumulator
            if isinstance(c.exit, Constant) or c.exit == c.entry:
                exit_value: Operand = c.exit
            else:
                exit_value = self.scalar_operand(c.exit, self.factor - 1)
            self.carried.append(CarriedScalar(c.entry, exit_value, c.init))

    def liveout_map(self) -> dict[str, LiveOut]:
        mapping: dict[str, LiveOut] = {}
        for reg in self.loop.live_out:
            handled = False
            for reduction in self.reductions.values():
                if reg == reduction.op.dest or reg == reduction.carried.entry:
                    mapping[reg.name] = LiveOut(
                        self._acc_regs[reduction.op.uid],
                        lane=None,
                        combine=reduction.kind,
                        combine_entry=reduction.carried.entry.name,
                    )
                    handled = True
                    break
            if handled:
                continue
            producer = self.def_op.get(reg)
            if producer is not None:
                if producer.uid in self.vector_defs:
                    mapping[reg.name] = LiveOut(
                        self.vector_defs[producer.uid], lane=self.factor - 1
                    )
                else:
                    mapping[reg.name] = LiveOut(
                        self.lane_defs[(producer.uid, self.factor - 1)]
                    )
            else:
                mapping[reg.name] = LiveOut(reg)
        return mapping


def vectorize_reduction_loop(
    dep: LoopDependence,
    machine: MachineDescription,
    scratch_elems: int = DEFAULT_SCRATCH_ELEMS,
) -> TransformResult | None:
    """Vectorize a loop whose only serialization is reassociable
    reductions.  Returns ``None`` when the loop does not qualify (no
    recognizable reduction, or other non-vectorizable operations)."""
    loop = dep.loop
    reductions = reassociable_reductions(dep)
    if not reductions:
        return None
    reduction_uids = {r.op.uid for r in reductions.values()}
    for op in loop.body:
        if op.uid in reduction_uids:
            continue
        if not dep.is_vectorizable(op):
            return None
    # carried scalars other than the reductions would still serialize
    for c in loop.carried:
        if c.entry not in reductions and c.exit != c.entry:
            return None

    vl = machine.vector_length
    assignment = {
        op.uid: (Side.SCALAR if op.uid in reduction_uids else Side.VECTOR)
        for op in loop.body
    }
    emitter = _ReductionEmitter(
        dep,
        machine,
        assignment,
        vl,
        suffix=".red",
        scratch_elems=scratch_elems,
        reductions=reductions,
    )
    main_loop, liveout = emitter.build()
    from repro.ir.verifier import verify_loop

    verify_loop(main_loop)

    scalar_assignment = {op.uid: Side.SCALAR for op in loop.body}
    cleanup_emitter = _Emitter(
        dep, machine, scalar_assignment, 1, ".cl", scratch_elems
    )
    cleanup, cleanup_liveout = cleanup_emitter.build()
    verify_loop(cleanup)

    combines = {
        entry.name: (r.kind, f"{entry.name}.acc")
        for entry, r in reductions.items()
    }
    return TransformResult(
        loop=main_loop,
        cleanup=cleanup,
        factor=vl,
        liveout_map=liveout,
        cleanup_liveout_map=cleanup_liveout,
        n_vector_ops=emitter.n_vector_ops,
        n_transfers=emitter.n_transfers,
        n_merges=emitter.n_merges,
        reduction_combines=combines,
    )


def combine_lanes(kind: OpKind, lanes, init):
    """Fold a vector accumulator's lanes together with the loop's initial
    value — the epilogue combine."""
    value = init
    for lane in lanes:
        if kind is OpKind.ADD:
            value = value + lane
        elif kind is OpKind.MUL:
            value = value * lane
        elif kind is OpKind.MIN:
            value = min(value, lane)
        elif kind is OpKind.MAX:
            value = max(value, lane)
        else:
            raise ValueError(f"not a reduction kind: {kind}")
    return value
