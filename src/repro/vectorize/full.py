"""Full vectorization (the paper's second baseline).

Every data-parallel operation is vectorized, but the loop is left intact
(not distributed) so vector and scalar operations overlap under modulo
scheduling.  Scalar operations are replicated by the vector length to
match the vector work output.

Because the evaluated machine communicates operands between register
files through memory, the paper applies one improvement to both the
traditional and full vectorizers: an operation is not vectorized unless
it has at least one vectorizable dataflow predecessor or successor —
vectorizing an isolated operation only buys transfer traffic.
"""

from __future__ import annotations

from repro.dependence.analysis import LoopDependence
from repro.dependence.graph import DepKind, Via
from repro.vectorize.communication import Side


def refine_isolated(dep: LoopDependence, vectorizable: set[int]) -> set[int]:
    """Drop vectorizable operations with no vectorizable dataflow
    neighbor (register or carried flow, either direction)."""
    neighbors: dict[int, set[int]] = {uid: set() for uid in vectorizable}
    for edge in dep.graph.edges:
        if edge.kind is not DepKind.FLOW or edge.via not in (
            Via.REGISTER,
            Via.CARRIED,
        ):
            continue
        if edge.src in neighbors:
            neighbors[edge.src].add(edge.dst)
        if edge.dst in neighbors:
            neighbors[edge.dst].add(edge.src)
    return {
        uid
        for uid in vectorizable
        if any(n in vectorizable for n in neighbors[uid])
    }


def full_assignment(dep: LoopDependence) -> dict[int, Side]:
    """The full-vectorization partition: all (non-isolated) vectorizable
    operations go to the vector side."""
    chosen = refine_isolated(dep, set(dep.vectorizable))
    return {
        op.uid: (Side.VECTOR if op.uid in chosen else Side.SCALAR)
        for op in dep.loop.body
    }
