"""Traditional vectorization (Allen & Kennedy), the paper's first baseline.

Loops containing a mix of vectorizable and non-vectorizable operations
are *distributed*: the dependence graph's strongly connected components
are partitioned into vector loops (components whose operations are all
vectorizable) and scalar loops (the rest), ordered topologically.  Greedy
typed fusion merges adjacent compatible components to limit the number of
distributed loops, and scalar expansion communicates register values
between loops through temporary arrays — including the case where
non-vectorizable memory references are first aggregated into contiguous
memory so vector loops can consume them directly.

Each distributed loop is then compiled independently: vector loops
through the shared transformation engine with everything vectorized,
scalar loops as ordinary (non-unrolled) modulo-scheduled loops.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.dependence.analysis import LoopDependence
from repro.dependence.graph import DepKind, Via
from repro.ir.loop import ArrayInfo, CarriedScalar, Loop
from repro.ir.operations import Operation, OpKind
from repro.ir.subscripts import Subscript
from repro.ir.types import ScalarType
from repro.ir.values import Operand, VirtualRegister
from repro.machine.machine import MachineDescription
from repro.vectorize.full import refine_isolated
from repro.vectorize.transform import DEFAULT_SCRATCH_ELEMS, ordered_components

EXPANSION_PREFIX = "exp."


@dataclass
class DistributedUnit:
    """One loop produced by distribution, in execution order."""

    loop: Loop
    vector: bool


def distribute_loop(
    dep: LoopDependence,
    machine: MachineDescription,
    scratch_elems: int = DEFAULT_SCRATCH_ELEMS,
    fuse: bool = True,
) -> list[DistributedUnit]:
    """Distribute a loop into vector and scalar sub-loops with scalar
    expansion, after greedy typed fusion.

    ``fuse=False`` reproduces the "straightforward implementation" the
    paper warns about: every strongly connected component becomes its own
    loop, which "tends to create a large number of distributed loops".
    """
    loop = dep.loop
    vec_ops = refine_isolated(dep, set(dep.vectorizable))
    components = ordered_components(dep)
    comp_of: dict[int, int] = {}
    for i, comp in enumerate(components):
        for uid in comp:
            comp_of[uid] = i
    comp_vector = [all(uid in vec_ops for uid in comp) for comp in components]

    # Greedy typed fusion: a component joins the latest partition of its
    # type consistent with dependence order.  fidx[i] is the partition
    # ordinal; components sharing (fidx, type) fuse into one loop.
    if fuse:
        fidx = [0] * len(components)
        for i, comp in enumerate(components):
            for uid in comp:
                for edge in dep.graph.predecessors(uid):
                    p = comp_of[edge.src]
                    if p == i:
                        continue
                    need = (
                        fidx[p] if comp_vector[p] == comp_vector[i] else fidx[p] + 1
                    )
                    fidx[i] = max(fidx[i], need)
    else:
        fidx = list(range(len(components)))

    partition_keys = sorted(
        {(fidx[i], not comp_vector[i]) for i in range(len(components))}
    )
    key_to_part = {key: n for n, key in enumerate(partition_keys)}
    part_of: dict[int, int] = {}
    part_vector = [not key[1] for key in partition_keys]
    part_members: list[list[int]] = [[] for _ in partition_keys]
    body_index = {op.uid: i for i, op in enumerate(loop.body)}
    for i, comp in enumerate(components):
        part = key_to_part[(fidx[i], not comp_vector[i])]
        for uid in comp:
            part_of[uid] = part
            part_members[part].append(uid)
    for members in part_members:
        members.sort(key=body_index.__getitem__)

    if len(partition_keys) == 1:
        # Nothing to distribute: a single loop, vector or scalar.
        return [DistributedUnit(loop, part_vector[0])]

    return _emit_partitions(
        dep, part_members, part_vector, part_of, scratch_elems
    )


def _emit_partitions(
    dep: LoopDependence,
    part_members: list[list[int]],
    part_vector: list[bool],
    part_of: dict[int, int],
    scratch_elems: int,
) -> list[DistributedUnit]:
    loop = dep.loop
    def_of: dict[VirtualRegister, Operation] = {
        op.dest: op for op in loop.body if op.dest is not None
    }

    # Values crossing partitions: register flow producer -> remote consumer.
    exported: dict[VirtualRegister, set[int]] = {}  # value -> consumer partitions
    for edge in dep.graph.edges:
        if edge.kind is not DepKind.FLOW or edge.via is not Via.REGISTER:
            continue
        src_op = dep.graph.ops[edge.src]
        if src_op.dest is None:
            continue
        sp, cp = part_of[edge.src], part_of[edge.dst]
        if sp != cp:
            exported.setdefault(src_op.dest, set()).add(cp)

    # Carried scalars: owner partition carries the recurrence; remote
    # readers receive the per-iteration entry value via expansion, unless
    # the carried value never changes (exit == entry), in which case every
    # reading partition simply declares it.
    carried_owner: dict[VirtualRegister, int] = {}
    carried_remote_readers: dict[VirtualRegister, set[int]] = {}
    for c in loop.carried:
        readers = [
            op.uid for op in loop.body if c.entry in op.registers_read()
        ]
        if isinstance(c.exit, VirtualRegister) and c.exit in def_of:
            owner = part_of[def_of[c.exit].uid]
        elif readers:
            owner = part_of[readers[0]]
        else:
            owner = 0
        carried_owner[c.entry] = owner
        if c.exit != c.entry:
            remote = {part_of[r] for r in readers if part_of[r] != owner}
            if remote:
                carried_remote_readers[c.entry] = remote

    units: list[DistributedUnit] = []
    for part, members in enumerate(part_members):
        units.append(
            _build_partition_loop(
                dep,
                part,
                members,
                part_vector[part],
                part_of,
                exported,
                carried_owner,
                carried_remote_readers,
                scratch_elems,
            )
        )
    return units


def _expansion_array(name: str) -> str:
    return f"{EXPANSION_PREFIX}{name}"


def _build_partition_loop(
    dep: LoopDependence,
    part: int,
    members: list[int],
    vector: bool,
    part_of: dict[int, int],
    exported: dict[VirtualRegister, set[int]],
    carried_owner: dict[VirtualRegister, int],
    carried_remote_readers: dict[VirtualRegister, set[int]],
    scratch_elems: int,
) -> DistributedUnit:
    loop = dep.loop
    member_set = set(members)
    def_here = {
        op.dest
        for op in loop.body
        if op.uid in member_set and op.dest is not None
    }
    carried_by_entry = {c.entry: c for c in loop.carried}

    body: list[Operation] = []
    arrays: dict[str, ArrayInfo] = {}
    substitution: dict[VirtualRegister, Operand] = {}

    def declare_expansion(reg: VirtualRegister) -> str:
        array = _expansion_array(reg.name)
        dtype = reg.type
        assert isinstance(dtype, ScalarType)
        arrays[array] = ArrayInfo(array, dtype, (scratch_elems,))
        return array

    # Imports: values produced elsewhere, and remote carried entries.
    needed: set[VirtualRegister] = set()
    for uid in members:
        for src in dep.graph.ops[uid].registers_read():
            if src in def_here:
                continue
            if src in carried_by_entry:
                c = carried_by_entry[src]
                if (
                    carried_owner[src] != part
                    and part in carried_remote_readers.get(src, set())
                ):
                    needed.add(src)
                continue
            producer = next(
                (op for op in loop.body if op.dest == src), None
            )
            if producer is not None and part_of[producer.uid] != part:
                needed.add(src)

    for reg in sorted(needed, key=lambda r: r.name):
        array = declare_expansion(reg)
        dtype = reg.type
        assert isinstance(dtype, ScalarType)
        local = VirtualRegister(f"{reg.name}.x{part}", dtype)
        body.append(
            Operation(
                OpKind.LOAD,
                dtype,
                dest=local,
                array=array,
                subscript=Subscript.linear(1, 0),
            )
        )
        substitution[reg] = local

    # Member operations with substituted operands.
    for uid in members:
        op = dep.graph.ops[uid]
        new_srcs = tuple(
            substitution.get(s, s) if isinstance(s, VirtualRegister) else s
            for s in op.srcs
        )
        if new_srcs != op.srcs:
            op = op.with_srcs(new_srcs)
        body.append(op)
        if op.array is not None:
            arrays[op.array] = loop.arrays[op.array]

    # Exports: expansion stores for values consumed by later partitions,
    # and the per-iteration entry value of carried scalars we own.
    for reg in sorted(exported, key=lambda r: r.name):
        if reg in def_here and exported[reg] - {part}:
            array = declare_expansion(reg)
            dtype = reg.type
            assert isinstance(dtype, ScalarType)
            body.append(
                Operation(
                    OpKind.STORE,
                    dtype,
                    srcs=(reg,),
                    array=array,
                    subscript=Subscript.linear(1, 0),
                )
            )
    for entry, remote in sorted(
        carried_remote_readers.items(), key=lambda kv: kv[0].name
    ):
        if carried_owner[entry] == part:
            array = declare_expansion(entry)
            dtype = entry.type
            assert isinstance(dtype, ScalarType)
            body.append(
                Operation(
                    OpKind.STORE,
                    dtype,
                    srcs=(entry,),
                    array=array,
                    subscript=Subscript.linear(1, 0),
                )
            )

    carried: list[CarriedScalar] = []
    for c in loop.carried:
        if carried_owner[c.entry] == part:
            carried.append(c)
        elif c.exit == c.entry and any(
            c.entry in dep.graph.ops[uid].registers_read() for uid in members
        ):
            carried.append(c)  # never-changing value: declare locally

    owned_entries = {c.entry for c in carried}
    live_out = tuple(
        r for r in loop.live_out if r in def_here or r in owned_entries
    )

    sub_loop = Loop(
        name=f"{loop.name}.d{part}{'v' if vector else 's'}",
        body=tuple(body),
        arrays=arrays,
        carried=tuple(carried),
        live_out=live_out,
        preheader=loop.preheader,
        symbols=dict(loop.symbols),
    )
    from repro.ir.verifier import verify_loop

    verify_loop(sub_loop)
    return DistributedUnit(sub_loop, vector)
