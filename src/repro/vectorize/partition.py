"""Selective vectorization partitioning (paper Figure 2).

Divides a loop's vectorizable operations between a scalar and a vector
partition using Kernighan and Lin's two-cluster heuristic.  The cost of a
configuration is the high-water mark of the resource bins — the ResMII of
the loop that will be modulo scheduled — with each scalar operation binned
``VL`` times to match the work output of one vector operation, explicit
scalar<->vector communication binned as a consequence of the partition
(one transfer per operand), and realignment merges charged to misaligned
vector memory references.

The algorithm is iterative: every iteration repositions each vectorizable
operation exactly once (greedily choosing, at each step, the unlocked
operation whose move yields the cheapest configuration — moves may
*increase* cost mid-iteration), remembers the best configuration seen,
and restarts from it.  It terminates when an iteration fails to improve
on its starting configuration.  Cost probes checkpoint the bins and
release/reserve only the moved operation's resources and the transfers it
touches, exactly as ``TEST-REPARTITION`` prescribes; a full bin-pack is
performed only once per Kernighan-Lin iteration.

Fast-path engineering (behavior-preserving — every optimization below
reproduces the original trajectory bit-for-bit):

* probes run the apply/undo delta protocol (:meth:`Bins.checkpoint` /
  :meth:`Bins.rollback`) on the live bins instead of deep-copying the
  ledger per ``TEST-REPARTITION``;
* an accepted move re-packs only the *suffix* of the deterministic
  ``BIN-PACK`` reservation sequence that the flip invalidates
  (:class:`IncrementalPacker`): the journal rolls the bins back to the
  first changed reservation and replays from there, which yields a state
  identical to a from-scratch ``BIN-PACK`` of the flipped assignment.
  Set ``REPRO_KL_VERIFY=1`` to assert full state equality (weights and
  ledger) against a reference pack after every move;
* probe results are memoized FM-style between moves: a cached probe is
  invalidated when the last committed move touched an intersecting
  transfer key (``touch_keys``), and is only *reused* after re-validating
  the bin weights, the rest-of-machine high-water mark, and the ledger
  entries the replay would release — under which the release/reserve
  replay is provably identical, so a hit is bit-identical to a fresh
  probe.  Set ``REPRO_KL_PROBE_CACHE=0`` to disable.
"""

from __future__ import annotations

import os

from dataclasses import dataclass, field, replace

from repro.dependence.analysis import LoopDependence
from repro.ir.operations import Operation, OpKind
from repro.machine.machine import MachineDescription
from repro.machine.resources import OpcodeInfo
from repro.vectorize.alignment import merge_overhead_opcodes
from repro.vectorize.bins import Bins, placement_freedom
from repro.vectorize.communication import (
    Dataflow,
    Side,
    Transfer,
    dataflow_of,
    transfer_cost_opcodes,
    transfer_for_key,
    transfer_keys_touching,
    transfers_for,
)


@dataclass(frozen=True)
class PartitionConfig:
    """Partitioner knobs.

    ``account_communication=False`` reproduces the Table 4 ablation: the
    cost model ignores transfer operations during partitioning (they are
    still inserted by the transformer for correctness).
    ``account_alignment=False`` likewise blinds the cost model to
    realignment merges.  ``max_iterations`` artificially limits the number
    of Kernighan-Lin iterations (the paper notes this option; ``None``
    runs to convergence).
    """

    account_communication: bool = True
    account_alignment: bool = True
    max_iterations: int | None = None
    balanced_bin_packing: bool = True


@dataclass
class PartitionResult:
    """Outcome of partitioning one loop."""

    assignment: dict[int, Side]
    cost: int
    scalar_cost: int
    iterations: int
    history: list[int] = field(default_factory=list)
    # Search-effort telemetry: moves actually performed, configurations
    # that improved the best cost, TEST-REPARTITION probes, and full
    # BIN-PACK invocations.
    moves: int = 0
    moves_accepted: int = 0
    n_probes: int = 0
    n_bin_packs: int = 0
    n_probe_cache_hits: int = 0
    n_repacks: int = 0
    n_pack_steps: int = 0

    @property
    def vectorized(self) -> set[int]:
        return {uid for uid, side in self.assignment.items() if side is Side.VECTOR}

    @property
    def any_vectorized(self) -> bool:
        return bool(self.vectorized)

    def ii_estimate(self, vector_length: int) -> float:
        """Estimated II per *original* iteration (cost is per VL of them)."""
        return self.cost / vector_length


class PartitionCostModel:
    """Maps (operation, side) and transfers to machine opcodes for binning."""

    def __init__(
        self,
        dep: LoopDependence,
        machine: MachineDescription,
        config: PartitionConfig,
    ):
        self.dep = dep
        self.machine = machine
        self.config = config
        self.dataflow: Dataflow = dataflow_of(dep)
        self.touch_keys: dict[int, set[object]] = {
            op.uid: transfer_keys_touching(self.dataflow, op)
            for op in dep.loop.body
        }
        # Plain-int work counters (always on — an increment is cheaper
        # than any guard); surfaced through PartitionResult and, when a
        # recorder is active, the kl.* counters.
        self.n_bin_packs = 0
        self.n_probes = 0
        self.n_probe_cache_hits = 0
        self.n_repacks = 0
        self.n_pack_steps = 0
        # (uid, side) -> opcode tuple; pure per model and re-resolved
        # thousands of times across probes otherwise.  Tuples (one object
        # per key) also make pack-sequence steps compare by identity.
        self._opcodes_memo: dict[tuple[int, Side], tuple[OpcodeInfo, ...]] = {}
        self._freedom_memo: dict[tuple[int, Side], int] = {}
        self._transfer_memo: dict[Transfer, tuple[OpcodeInfo, ...]] = {}
        self._overhead_memo: tuple[OpcodeInfo, ...] | None = None
        self._by_uid = {op.uid: op for op in dep.loop.body}

    def op_opcodes(self, op: Operation, side: Side) -> tuple[OpcodeInfo, ...]:
        key = (op.uid, side)
        infos = self._opcodes_memo.get(key)
        if infos is None:
            infos = self._opcodes_memo[key] = self._select_op_opcodes(op, side)
        return infos

    def _select_op_opcodes(self, op: Operation, side: Side) -> tuple[OpcodeInfo, ...]:
        if side is Side.SCALAR:
            info = self.machine.opcode_info_for(op.kind, op.dtype, False)
            return (info,) * self.machine.vector_length
        infos = [self.machine.opcode_info_for(op.kind, op.dtype, True)]
        if op.kind.is_memory and self.config.account_alignment:
            infos.extend(merge_overhead_opcodes(self.machine, self.dep.loop, op))
        return tuple(infos)

    def op_freedom(self, op: Operation, side: Side) -> int:
        """Bin-pack ordering key (fewest placement alternatives first)."""
        key = (op.uid, side)
        freedom = self._freedom_memo.get(key)
        if freedom is None:
            freedom = self._freedom_memo[key] = min(
                placement_freedom(self.machine, info)
                for info in self.op_opcodes(op, side)
            )
        return freedom

    def overhead_opcodes(self) -> tuple[OpcodeInfo, ...]:
        """Loop control and addressing work, constant across partitions:
        one pointer bump per distinct array, one induction-variable
        increment, one compare-and-branch."""
        if self._overhead_memo is not None:
            return self._overhead_memo
        machine = self.machine
        from repro.ir.types import ScalarType

        infos: list[OpcodeInfo] = []
        if machine.model_loop_overhead:
            arrays = {op.array for op in self.dep.loop.body if op.kind.is_memory}
            for _ in sorted(a for a in arrays if a is not None):
                infos.append(
                    machine.opcode_info_for(OpKind.BUMP, ScalarType.I64, False)
                )
            infos.append(machine.opcode_info_for(OpKind.IVINC, ScalarType.I64, False))
            infos.append(machine.opcode_info_for(OpKind.CBR, ScalarType.I64, False))
        self._overhead_memo = tuple(infos)
        return self._overhead_memo

    def transfer_opcodes(self, transfer: Transfer) -> tuple[OpcodeInfo, ...]:
        if not self.config.account_communication:
            return ()
        opcodes = self._transfer_memo.get(transfer)
        if opcodes is None:
            opcodes = self._transfer_memo[transfer] = tuple(
                transfer_cost_opcodes(self.machine, transfer)
            )
        return opcodes

    # ------------------------------------------------------------------

    def pack_sequence(
        self, assignment: dict[int, Side]
    ) -> list[tuple[object, tuple[OpcodeInfo, ...]]]:
        """The deterministic reservation sequence BIN-PACK performs for
        ``assignment``: operations with the fewest placement alternatives
        first (ties in body order), then partition-induced transfers, then
        loop overhead.  Each step is ``(reservation key, opcodes)``; two
        equal steps reserve identically from identical bins, which is what
        lets :class:`IncrementalPacker` resume a pack mid-sequence."""
        steps: list[tuple[object, tuple[OpcodeInfo, ...]]] = []
        ordered = sorted(
            self.dep.loop.body,
            key=lambda op: self.op_freedom(op, assignment[op.uid]),
        )
        for op in ordered:
            steps.append((("op", op.uid), self.op_opcodes(op, assignment[op.uid])))
        for transfer in transfers_for(self.dataflow, assignment):
            opcodes = self.transfer_opcodes(transfer)
            if opcodes:
                steps.append((("comm", transfer.key), opcodes))
        for i, info in enumerate(self.overhead_opcodes()):
            steps.append((("overhead", i), (info,)))
        return steps

    def bin_pack(self, assignment: dict[int, Side]) -> Bins:
        """Full greedy bin-pack of the configuration (Figure 2, BIN-PACK)."""
        self.n_bin_packs += 1
        bins = Bins(self.machine, balance_ties=self.config.balanced_bin_packing)
        for key, opcodes in self.pack_sequence(assignment):
            for info in opcodes:
                bins.reserve_least_used(info, key)
        return bins

    def _apply_flip(
        self,
        bins: Bins,
        assignment: dict[int, Side],
        op: Operation,
    ) -> None:
        """Apply the release/reserve delta of flipping ``op`` to ``bins``
        (TEST-REPARTITION's incremental re-reservation).  ``assignment``
        is left unchanged."""
        bins.release(("op", op.uid))
        touched = self.touch_keys[op.uid]
        for key in touched:
            if bins.has_key(("comm", key)):
                bins.release(("comm", key))
        new_side = assignment[op.uid].flipped()
        assignment[op.uid] = new_side
        try:
            bins.reserve_all(self.op_opcodes(op, new_side), ("op", op.uid))
            for key in touched:
                transfer = transfer_for_key(self.dataflow, assignment, key)
                if transfer is None:
                    continue
                opcodes = self.transfer_opcodes(transfer)
                if opcodes:
                    bins.reserve_all(opcodes, ("comm", key))
        finally:
            assignment[op.uid] = new_side.flipped()

    def probe_cost(
        self,
        bins: Bins,
        assignment: dict[int, Side],
        op: Operation,
    ) -> int:
        """Cost of the configuration with ``op`` switched, without a full
        re-pack (Figure 2, TEST-REPARTITION).  The delta is applied to the
        live bins and journaled, then rolled back exactly."""
        self.n_probes += 1
        mark = bins.checkpoint()
        try:
            self._apply_flip(bins, assignment, op)
            return bins.high_water_mark()
        finally:
            bins.rollback(mark)

    # ------------------------------------------------------------------

    def probe_footprint(self, op: Operation) -> frozenset[str]:
        """Resource instances a flip of ``op`` can touch, on either side:
        the validity context of a cached probe result."""
        classes: set[str] = set()
        for side in (Side.SCALAR, Side.VECTOR):
            for info in self.op_opcodes(op, side):
                for use in info.uses:
                    classes.add(use.resource)
        for key in self.touch_keys[op.uid]:
            if isinstance(key, tuple) and key and key[0] == "carried":
                dtype = None
                for entry in self.dataflow.carried_consumers:
                    if entry.name == key[1]:
                        dtype = entry.type
                        break
            else:
                dtype = self.dataflow.producer_dtype.get(key)
            if dtype is None:
                continue
            for to_vector in (False, True):
                transfer = Transfer(key=key, dtype=dtype, to_vector=to_vector)
                for info in self.transfer_opcodes(transfer):
                    for use in info.uses:
                        classes.add(use.resource)
        instances: set[str] = set()
        for name in classes:
            instances.update(self.machine.resource_class(name).instances())
        return frozenset(instances)


class IncrementalPacker:
    """A packed :class:`Bins` kept in lockstep with an assignment by
    resuming BIN-PACK mid-sequence instead of re-running it.

    The pack is applied step by step with a journal mark recorded before
    each step.  When the assignment changes, the new
    :meth:`PartitionCostModel.pack_sequence` is diffed against the packed
    one; the bins roll back to the first differing step and only the
    suffix is replayed.  Because a step's effect is a pure function of
    the bins state it is applied to, the result is identical — weights
    and ledger — to a from-scratch ``BIN-PACK`` of the new assignment,
    so the Kernighan-Lin trajectory is preserved exactly.
    """

    def __init__(self, model: PartitionCostModel, assignment: dict[int, Side]):
        self.model = model
        self.bins = Bins(
            model.machine, balance_ties=model.config.balanced_bin_packing
        )
        self.steps: list[tuple[object, tuple[OpcodeInfo, ...]]] = []
        self.marks: list[int] = []
        model.n_bin_packs += 1
        self._extend(model.pack_sequence(assignment))

    def _extend(
        self, steps: list[tuple[object, tuple[OpcodeInfo, ...]]]
    ) -> None:
        bins = self.bins
        for step in steps:
            self.marks.append(bins.checkpoint())
            key, opcodes = step
            for info in opcodes:
                bins.reserve_least_used(info, key)
            self.steps.append(step)
        self.model.n_pack_steps += len(steps)

    def repack(self, assignment: dict[int, Side]) -> int:
        """Bring the bins to ``BIN-PACK(assignment)`` state; returns the
        configuration cost (high-water mark)."""
        self.model.n_repacks += 1
        new_steps = self.model.pack_sequence(assignment)
        steps = self.steps
        divergence = 0
        limit = min(len(steps), len(new_steps))
        while divergence < limit and steps[divergence] == new_steps[divergence]:
            divergence += 1
        if divergence < len(steps):
            self.bins.rollback(self.marks[divergence])
            del steps[divergence:]
            del self.marks[divergence:]
        if divergence < len(new_steps):
            self._extend(new_steps[divergence:])
        return self.bins.high_water_mark()


class ProbeCache:
    """FM-style memo of TEST-REPARTITION results between moves.

    A cached entry stores, besides the probe result, the weights of every
    bin the flip could touch (the op's *footprint*), the maximum weight
    over all other bins, and a snapshot of the ledger entries the replay
    would release (the op's own reservations and its touched transfer
    keys').  A hit requires all three to be unchanged — under which the
    probe's release/reserve replay is provably identical, so the cached
    result is exact, not approximate.  Entries whose transfer keys
    intersect the last committed move's ``touch_keys`` are dropped
    outright (the transfer structure itself may have changed).
    """

    def __init__(self, model: PartitionCostModel, bins: Bins):
        self.model = model
        self.bins = bins
        self._entries: dict[
            int,
            tuple[
                int,
                list[tuple[str, int]],
                int,
                dict[object, tuple[tuple[str, int], ...]],
            ],
        ] = {}
        self._footprints: dict[int, frozenset[str]] = {}

    def _footprint(self, op: Operation) -> frozenset[str]:
        fp = self._footprints.get(op.uid)
        if fp is None:
            fp = self._footprints[op.uid] = self.model.probe_footprint(op)
        return fp

    def _rest_max(self, footprint: frozenset[str]) -> int:
        rest = 0
        for instance, w in self.bins.weights.items():
            if w > rest and instance not in footprint:
                rest = w
        return rest

    def invalidate_for_move(self, op: Operation) -> None:
        touch_keys = self.model.touch_keys
        moved = touch_keys[op.uid]
        stale = [
            uid
            for uid in self._entries
            if uid == op.uid or touch_keys[uid] & moved
        ]
        for uid in stale:
            del self._entries[uid]

    def _released_ledger(
        self, op: Operation
    ) -> dict[object, tuple[tuple[str, int], ...]]:
        """Snapshot of the ledger entries a probe of ``op`` releases."""
        reservations = self.bins.reservations
        snap: dict[object, tuple[tuple[str, int], ...]] = {
            ("op", op.uid): tuple(reservations.get(("op", op.uid), ()))
        }
        for key in self.model.touch_keys[op.uid]:
            entries = reservations.get(("comm", key))
            if entries:
                snap[("comm", key)] = tuple(entries)
        return snap

    def probe(self, assignment: dict[int, Side], op: Operation) -> int:
        entry = self._entries.get(op.uid)
        footprint = self._footprint(op)
        weights = self.bins.weights
        if entry is not None:
            result, context, rest, released = entry
            if (
                all(weights[i] == w for i, w in context)
                and self._rest_max(footprint) == rest
                and self._released_ledger(op) == released
            ):
                self.model.n_probe_cache_hits += 1
                return result
        result = self.model.probe_cost(self.bins, assignment, op)
        context = [(i, weights[i]) for i in footprint]
        self._entries[op.uid] = (
            result,
            context,
            self._rest_max(footprint),
            self._released_ledger(op),
        )
        return result



def partition_operations(
    dep: LoopDependence,
    machine: MachineDescription,
    config: PartitionConfig | None = None,
) -> PartitionResult:
    """Run the Figure 2 partitioner on an analyzed loop."""
    from repro.observability.recorder import active_recorder, maybe_span

    config = config or PartitionConfig()
    rec = active_recorder()
    with maybe_span(rec, "partition", loop=dep.loop.name):
        model = PartitionCostModel(dep, machine, config)
        body = dep.loop.body

        assignment: dict[int, Side] = {op.uid: Side.SCALAR for op in body}
        packer = IncrementalPacker(model, assignment)
        scalar_cost = packer.bins.high_water_mark()

        candidates = [op for op in body if dep.is_vectorizable(op)]
        if not candidates or not machine.supports_vectors:
            if rec is not None:
                rec.remark(
                    "partition",
                    dep.loop.name,
                    "all-scalar",
                    "no vectorizable operations"
                    if not candidates
                    else "machine has no vector units",
                    cost=scalar_cost,
                )
            return PartitionResult(
                assignment=assignment,
                cost=scalar_cost,
                scalar_cost=scalar_cost,
                iterations=0,
                history=[scalar_cost],
                n_bin_packs=model.n_bin_packs,
                n_pack_steps=model.n_pack_steps,
            )

        best_assignment = dict(assignment)
        best_cost = scalar_cost
        history = [scalar_cost]
        last_cost: float = float("inf")
        iterations = 0
        moves = 0
        moves_accepted = 0
        verify = os.environ.get("REPRO_KL_VERIFY", "") not in ("", "0")
        use_cache = os.environ.get("REPRO_KL_PROBE_CACHE", "1") not in ("", "0")

        while last_cost != best_cost:
            if config.max_iterations is not None and iterations >= config.max_iterations:
                break
            last_cost = best_cost
            iterations += 1
            locked: set[int] = set()
            cost = packer.repack(assignment)
            bins = packer.bins
            cache = ProbeCache(model, bins) if use_cache else None

            for _ in range(len(candidates)):
                # FIND-OP-TO-SWITCH: cheapest probe among unlocked candidates.
                best_op: Operation | None = None
                best_probe: float = float("inf")
                for op in candidates:
                    if op.uid in locked:
                        continue
                    probe = (
                        cache.probe(assignment, op)
                        if cache is not None
                        else model.probe_cost(bins, assignment, op)
                    )
                    if probe < best_probe:
                        best_probe = probe
                        best_op = op
                assert best_op is not None
                locked.add(best_op.uid)
                moves += 1
                if cache is not None:
                    cache.invalidate_for_move(best_op)
                assignment[best_op.uid] = assignment[best_op.uid].flipped()
                # Resume BIN-PACK from the first invalidated reservation
                # in place of re-running it from scratch.
                cost = packer.repack(assignment)
                if verify:
                    reference = model.bin_pack(assignment)
                    if (
                        bins.weights != reference.weights
                        or bins.reservations != reference.reservations
                    ):
                        raise AssertionError(
                            "resumed pack state diverged from reference "
                            f"bin-pack after moving op {best_op.uid} in "
                            f"loop {dep.loop.name!r}"
                        )
                if cost < best_cost:
                    best_cost = cost
                    best_assignment = dict(assignment)
                    moves_accepted += 1
            history.append(best_cost)
            assignment = dict(best_assignment)

        result = PartitionResult(
            assignment=best_assignment,
            cost=best_cost,
            scalar_cost=scalar_cost,
            iterations=iterations,
            history=history,
            moves=moves,
            moves_accepted=moves_accepted,
            n_probes=model.n_probes,
            n_bin_packs=model.n_bin_packs,
            n_probe_cache_hits=model.n_probe_cache_hits,
            n_repacks=model.n_repacks,
            n_pack_steps=model.n_pack_steps,
        )
        if verify and len(candidates) <= ORACLE_VERIFY_MAX_CANDIDATES:
            _oracle_second_witness(dep, machine, config, result)
        if rec is not None:
            rec.count("kl.loops_partitioned")
            rec.count("kl.iterations", iterations)
            rec.count("kl.moves_evaluated", model.n_probes)
            rec.count("kl.moves_accepted", moves_accepted)
            rec.count("kl.bin_packs", model.n_bin_packs)
            rec.count("kl.probe_cache_hits", model.n_probe_cache_hits)
            rec.count("kl.repacks", model.n_repacks)
            rec.count("kl.pack_steps", model.n_pack_steps)
            rec.observe("kl.cost_reduction", scalar_cost - best_cost)
            rec.event(
                "kl.converged",
                loop=dep.loop.name,
                iterations=iterations,
                cost=best_cost,
                scalar_cost=scalar_cost,
                moves=moves,
                moves_accepted=moves_accepted,
                history=list(history),
                vectorized=len(result.vectorized),
                candidates=len(candidates),
            )
            _emit_placement_remarks(rec, dep, machine, config, model, result)
        return result


#: ``REPRO_KL_VERIFY`` second witness: loops with at most this many
#: candidate operations are re-solved exactly by the oracle each time.
ORACLE_VERIFY_MAX_CANDIDATES = 12


def _oracle_second_witness(dep, machine, config, result) -> None:
    """Cross-check the KL cost against the branch-and-bound oracle.

    Runs only under ``REPRO_KL_VERIFY=1`` on small loops.  The oracle is
    started *cold* (no incumbent): a corrupted probe-cache/incremental
    pack cost must not be allowed to prune away its own refutation.  A
    KL cost below the oracle's sound lower bound can only mean the
    incremental pack state diverged from a true bin-pack.
    """
    from repro.oracle import OracleBudget
    from repro.oracle.exact_partition import exact_partition

    oracle = exact_partition(
        dep,
        machine,
        config,
        budget=OracleBudget(max_nodes=50_000, max_seconds=2.0),
        incumbent=None,
    )
    if result.cost < oracle.lower_bound:
        raise AssertionError(
            f"KL cost {result.cost} beats the oracle lower bound "
            f"{oracle.lower_bound} in loop {dep.loop.name!r}: the "
            "incremental pack cost is not a real partition cost"
        )


def _emit_placement_remarks(
    rec,
    dep: LoopDependence,
    machine: MachineDescription,
    config: PartitionConfig,
    model: PartitionCostModel,
    result: PartitionResult,
) -> None:
    """One remark per operation explaining its scalar/vector placement.

    For a vectorizable operation left scalar, the reason code attributes
    the loss to the cost-model component that made vector placement
    unprofitable: re-probing the flip with the communication (then
    alignment) term blinded identifies which overhead tipped the balance;
    if the flip loses even with both blinded, the vector resources
    themselves are the bottleneck.
    """
    bins = model.bin_pack(result.assignment)
    assignment = dict(result.assignment)
    blind_comm = PartitionCostModel(
        dep, machine, replace(config, account_communication=False)
    )
    blind_align = PartitionCostModel(
        dep, machine, replace(config, account_alignment=False)
    )
    for op in dep.loop.body:
        side = result.assignment[op.uid]
        placement = "vector" if side is Side.VECTOR else "scalar"
        if not dep.is_vectorizable(op):
            rec.remark(
                "partition",
                dep.loop.name,
                "not-vectorizable",
                f"op {op.uid} ({op.mnemonic()}) is scalar: dependence "
                "analysis rules out vectorization",
                op=op.uid,
                placement="scalar",
            )
            continue
        flip = model.probe_cost(bins, assignment, op)
        delta = flip - result.cost
        if side is Side.VECTOR:
            rec.remark(
                "partition",
                dep.loop.name,
                "vector-profitable",
                f"op {op.uid} ({op.mnemonic()}) is vector: moving it back "
                f"to the scalar units would cost {flip} vs {result.cost}",
                op=op.uid,
                placement="vector",
                flip_cost=flip,
                cost=result.cost,
            )
            continue
        if delta <= 0:
            reason, why = "no-benefit", "gains nothing"
        elif (
            config.account_communication
            and blind_comm.probe_cost(bins, assignment, op) <= result.cost
        ):
            reason, why = (
                "communication-cost",
                "loses to the scalar<->vector transfers it would add",
            )
        elif (
            config.account_alignment
            and op.kind.is_memory
            and blind_align.probe_cost(bins, assignment, op) <= result.cost
        ):
            reason, why = (
                "alignment-merge",
                "loses to the realignment merges it would add",
            )
        else:
            reason, why = (
                "resource-pressure",
                "loses on vector-unit pressure",
            )
        rec.remark(
            "partition",
            dep.loop.name,
            reason,
            f"op {op.uid} ({op.mnemonic()}) stays scalar: vectorizing it "
            f"{why} (cost {result.cost} -> {flip})",
            op=op.uid,
            placement=placement,
            flip_cost=flip,
            cost=result.cost,
        )
