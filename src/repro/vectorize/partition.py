"""Selective vectorization partitioning (paper Figure 2).

Divides a loop's vectorizable operations between a scalar and a vector
partition using Kernighan and Lin's two-cluster heuristic.  The cost of a
configuration is the high-water mark of the resource bins — the ResMII of
the loop that will be modulo scheduled — with each scalar operation binned
``VL`` times to match the work output of one vector operation, explicit
scalar<->vector communication binned as a consequence of the partition
(one transfer per operand), and realignment merges charged to misaligned
vector memory references.

The algorithm is iterative: every iteration repositions each vectorizable
operation exactly once (greedily choosing, at each step, the unlocked
operation whose move yields the cheapest configuration — moves may
*increase* cost mid-iteration), remembers the best configuration seen,
and restarts from it.  It terminates when an iteration fails to improve
on its starting configuration.  Cost probes checkpoint the bins and
release/reserve only the moved operation's resources and the transfers it
touches, exactly as ``TEST-REPARTITION`` prescribes; a full bin-pack is
performed only after an operation is finally chosen.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.dependence.analysis import LoopDependence
from repro.ir.operations import Operation, OpKind
from repro.machine.machine import MachineDescription
from repro.machine.resources import OpcodeInfo
from repro.vectorize.alignment import merge_overhead_opcodes
from repro.vectorize.bins import Bins, placement_freedom
from repro.vectorize.communication import (
    Dataflow,
    Side,
    Transfer,
    dataflow_of,
    transfer_cost_opcodes,
    transfer_for_key,
    transfer_keys_touching,
    transfers_for,
)


@dataclass(frozen=True)
class PartitionConfig:
    """Partitioner knobs.

    ``account_communication=False`` reproduces the Table 4 ablation: the
    cost model ignores transfer operations during partitioning (they are
    still inserted by the transformer for correctness).
    ``account_alignment=False`` likewise blinds the cost model to
    realignment merges.  ``max_iterations`` artificially limits the number
    of Kernighan-Lin iterations (the paper notes this option; ``None``
    runs to convergence).
    """

    account_communication: bool = True
    account_alignment: bool = True
    max_iterations: int | None = None
    balanced_bin_packing: bool = True


@dataclass
class PartitionResult:
    """Outcome of partitioning one loop."""

    assignment: dict[int, Side]
    cost: int
    scalar_cost: int
    iterations: int
    history: list[int] = field(default_factory=list)
    # Search-effort telemetry: moves actually performed, configurations
    # that improved the best cost, TEST-REPARTITION probes, and full
    # BIN-PACK invocations.
    moves: int = 0
    moves_accepted: int = 0
    n_probes: int = 0
    n_bin_packs: int = 0

    @property
    def vectorized(self) -> set[int]:
        return {uid for uid, side in self.assignment.items() if side is Side.VECTOR}

    @property
    def any_vectorized(self) -> bool:
        return bool(self.vectorized)

    def ii_estimate(self, vector_length: int) -> float:
        """Estimated II per *original* iteration (cost is per VL of them)."""
        return self.cost / vector_length


class PartitionCostModel:
    """Maps (operation, side) and transfers to machine opcodes for binning."""

    def __init__(
        self,
        dep: LoopDependence,
        machine: MachineDescription,
        config: PartitionConfig,
    ):
        self.dep = dep
        self.machine = machine
        self.config = config
        self.dataflow: Dataflow = dataflow_of(dep)
        self.touch_keys: dict[int, set[object]] = {
            op.uid: transfer_keys_touching(self.dataflow, op)
            for op in dep.loop.body
        }
        # Plain-int work counters (always on — an increment is cheaper
        # than any guard); surfaced through PartitionResult and, when a
        # recorder is active, the kl.* counters.
        self.n_bin_packs = 0
        self.n_probes = 0

    def op_opcodes(self, op: Operation, side: Side) -> list[OpcodeInfo]:
        if side is Side.SCALAR:
            info = self.machine.opcode_info_for(op.kind, op.dtype, False)
            return [info] * self.machine.vector_length
        infos = [self.machine.opcode_info_for(op.kind, op.dtype, True)]
        if op.kind.is_memory and self.config.account_alignment:
            infos.extend(merge_overhead_opcodes(self.machine, self.dep.loop, op))
        return infos

    def overhead_opcodes(self) -> list[OpcodeInfo]:
        """Loop control and addressing work, constant across partitions:
        one pointer bump per distinct array, one induction-variable
        increment, one compare-and-branch."""
        machine = self.machine
        from repro.ir.types import ScalarType

        if not machine.model_loop_overhead:
            return []
        infos: list[OpcodeInfo] = []
        arrays = {op.array for op in self.dep.loop.body if op.kind.is_memory}
        for _ in sorted(a for a in arrays if a is not None):
            infos.append(machine.opcode_info_for(OpKind.BUMP, ScalarType.I64, False))
        infos.append(machine.opcode_info_for(OpKind.IVINC, ScalarType.I64, False))
        infos.append(machine.opcode_info_for(OpKind.CBR, ScalarType.I64, False))
        return infos

    def transfer_opcodes(self, transfer: Transfer) -> list[OpcodeInfo]:
        if not self.config.account_communication:
            return []
        return transfer_cost_opcodes(self.machine, transfer)

    # ------------------------------------------------------------------

    def bin_pack(self, assignment: dict[int, Side]) -> Bins:
        """Full greedy bin-pack of the configuration (Figure 2, BIN-PACK).

        Operations with the fewest placement alternatives are packed
        first; ties resolve in body order.
        """
        self.n_bin_packs += 1
        bins = Bins(self.machine, balance_ties=self.config.balanced_bin_packing)
        ordered = sorted(
            self.dep.loop.body,
            key=lambda op: min(
                placement_freedom(self.machine, info)
                for info in self.op_opcodes(op, assignment[op.uid])
            ),
        )
        for op in ordered:
            bins.reserve_all(self.op_opcodes(op, assignment[op.uid]), ("op", op.uid))
        for transfer in transfers_for(self.dataflow, assignment):
            opcodes = self.transfer_opcodes(transfer)
            if opcodes:
                bins.reserve_all(opcodes, ("comm", transfer.key))
        for i, info in enumerate(self.overhead_opcodes()):
            bins.reserve_least_used(info, ("overhead", i))
        return bins

    def probe_cost(
        self,
        bins: Bins,
        assignment: dict[int, Side],
        op: Operation,
    ) -> int:
        """Cost of the configuration with ``op`` switched, without a full
        re-pack (Figure 2, TEST-REPARTITION)."""
        self.n_probes += 1
        probe = bins.copy()
        probe.release(("op", op.uid))
        touched = self.touch_keys[op.uid]
        for key in touched:
            if probe.has_key(("comm", key)):
                probe.release(("comm", key))
        new_side = assignment[op.uid].flipped()
        assignment[op.uid] = new_side
        try:
            probe.reserve_all(self.op_opcodes(op, new_side), ("op", op.uid))
            for key in touched:
                transfer = transfer_for_key(self.dataflow, assignment, key)
                if transfer is None:
                    continue
                opcodes = self.transfer_opcodes(transfer)
                if opcodes:
                    probe.reserve_all(opcodes, ("comm", key))
        finally:
            assignment[op.uid] = new_side.flipped()
        return probe.high_water_mark()


def partition_operations(
    dep: LoopDependence,
    machine: MachineDescription,
    config: PartitionConfig | None = None,
) -> PartitionResult:
    """Run the Figure 2 partitioner on an analyzed loop."""
    from repro.observability.recorder import active_recorder, maybe_span

    config = config or PartitionConfig()
    rec = active_recorder()
    with maybe_span(rec, "partition", loop=dep.loop.name):
        model = PartitionCostModel(dep, machine, config)
        body = dep.loop.body

        assignment: dict[int, Side] = {op.uid: Side.SCALAR for op in body}
        scalar_bins = model.bin_pack(assignment)
        scalar_cost = scalar_bins.high_water_mark()

        candidates = [op for op in body if dep.is_vectorizable(op)]
        if not candidates or not machine.supports_vectors:
            if rec is not None:
                rec.remark(
                    "partition",
                    dep.loop.name,
                    "all-scalar",
                    "no vectorizable operations"
                    if not candidates
                    else "machine has no vector units",
                    cost=scalar_cost,
                )
            return PartitionResult(
                assignment=assignment,
                cost=scalar_cost,
                scalar_cost=scalar_cost,
                iterations=0,
                history=[scalar_cost],
                n_bin_packs=model.n_bin_packs,
            )

        best_assignment = dict(assignment)
        best_cost = scalar_cost
        history = [scalar_cost]
        last_cost: float = float("inf")
        iterations = 0
        moves = 0
        moves_accepted = 0

        while last_cost != best_cost:
            if config.max_iterations is not None and iterations >= config.max_iterations:
                break
            last_cost = best_cost
            iterations += 1
            locked: set[int] = set()
            bins = model.bin_pack(assignment)

            for _ in range(len(candidates)):
                # FIND-OP-TO-SWITCH: cheapest probe among unlocked candidates.
                best_op: Operation | None = None
                best_probe: float = float("inf")
                for op in candidates:
                    if op.uid in locked:
                        continue
                    probe = model.probe_cost(bins, assignment, op)
                    if probe < best_probe:
                        best_probe = probe
                        best_op = op
                assert best_op is not None
                assignment[best_op.uid] = assignment[best_op.uid].flipped()
                locked.add(best_op.uid)
                moves += 1
                bins = model.bin_pack(assignment)
                cost = bins.high_water_mark()
                if cost < best_cost:
                    best_cost = cost
                    best_assignment = dict(assignment)
                    moves_accepted += 1
            history.append(best_cost)
            assignment = dict(best_assignment)

        result = PartitionResult(
            assignment=best_assignment,
            cost=best_cost,
            scalar_cost=scalar_cost,
            iterations=iterations,
            history=history,
            moves=moves,
            moves_accepted=moves_accepted,
            n_probes=model.n_probes,
            n_bin_packs=model.n_bin_packs,
        )
        if rec is not None:
            rec.count("kl.loops_partitioned")
            rec.count("kl.iterations", iterations)
            rec.count("kl.moves_evaluated", model.n_probes)
            rec.count("kl.moves_accepted", moves_accepted)
            rec.count("kl.bin_packs", model.n_bin_packs)
            rec.observe("kl.cost_reduction", scalar_cost - best_cost)
            rec.event(
                "kl.converged",
                loop=dep.loop.name,
                iterations=iterations,
                cost=best_cost,
                scalar_cost=scalar_cost,
                moves=moves,
                moves_accepted=moves_accepted,
                history=list(history),
                vectorized=len(result.vectorized),
                candidates=len(candidates),
            )
            _emit_placement_remarks(rec, dep, machine, config, model, result)
        return result


def _emit_placement_remarks(
    rec,
    dep: LoopDependence,
    machine: MachineDescription,
    config: PartitionConfig,
    model: PartitionCostModel,
    result: PartitionResult,
) -> None:
    """One remark per operation explaining its scalar/vector placement.

    For a vectorizable operation left scalar, the reason code attributes
    the loss to the cost-model component that made vector placement
    unprofitable: re-probing the flip with the communication (then
    alignment) term blinded identifies which overhead tipped the balance;
    if the flip loses even with both blinded, the vector resources
    themselves are the bottleneck.
    """
    bins = model.bin_pack(result.assignment)
    assignment = dict(result.assignment)
    blind_comm = PartitionCostModel(
        dep, machine, replace(config, account_communication=False)
    )
    blind_align = PartitionCostModel(
        dep, machine, replace(config, account_alignment=False)
    )
    for op in dep.loop.body:
        side = result.assignment[op.uid]
        placement = "vector" if side is Side.VECTOR else "scalar"
        if not dep.is_vectorizable(op):
            rec.remark(
                "partition",
                dep.loop.name,
                "not-vectorizable",
                f"op {op.uid} ({op.mnemonic()}) is scalar: dependence "
                "analysis rules out vectorization",
                op=op.uid,
                placement="scalar",
            )
            continue
        flip = model.probe_cost(bins, assignment, op)
        delta = flip - result.cost
        if side is Side.VECTOR:
            rec.remark(
                "partition",
                dep.loop.name,
                "vector-profitable",
                f"op {op.uid} ({op.mnemonic()}) is vector: moving it back "
                f"to the scalar units would cost {flip} vs {result.cost}",
                op=op.uid,
                placement="vector",
                flip_cost=flip,
                cost=result.cost,
            )
            continue
        if delta <= 0:
            reason, why = "no-benefit", "gains nothing"
        elif (
            config.account_communication
            and blind_comm.probe_cost(bins, assignment, op) <= result.cost
        ):
            reason, why = (
                "communication-cost",
                "loses to the scalar<->vector transfers it would add",
            )
        elif (
            config.account_alignment
            and op.kind.is_memory
            and blind_align.probe_cost(bins, assignment, op) <= result.cost
        ):
            reason, why = (
                "alignment-merge",
                "loses to the realignment merges it would add",
            )
        else:
            reason, why = (
                "resource-pressure",
                "loses on vector-unit pressure",
            )
        rec.remark(
            "partition",
            dep.loop.name,
            reason,
            f"op {op.uid} ({op.mnemonic()}) stays scalar: vectorizing it "
            f"{why} (cost {result.cost} -> {flip})",
            op=op.uid,
            placement=placement,
            flip_cost=flip,
            cost=result.cost,
        )
