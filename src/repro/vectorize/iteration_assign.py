"""Whole-iteration assignment (paper Section 6, future work).

Instead of splitting each iteration's operations between scalar and
vector resources, assign *whole iterations*: unroll by ``VL + k`` and run
iterations ``0..VL-1`` of each group on the vector units while iterations
``VL..VL+k-1`` execute in scalar form alongside.  In the absence of
loop-carried dependences this requires no scalar<->vector communication
at all.  The drawback the paper predicts: because the unroll factor is
not a multiple of the vector length, vector memory references can never
be aligned, so every one pays the realignment merge.

The scheme applies only to loops where every operation is vectorizable
and there are no carried scalars; :func:`whole_iteration_transform`
returns ``None`` otherwise.
"""

from __future__ import annotations

from repro.dependence.analysis import LoopDependence
from repro.machine.machine import MachineDescription
from repro.vectorize.communication import Side
from repro.vectorize.transform import (
    DEFAULT_SCRATCH_ELEMS,
    TransformResult,
    _Emitter,
    _topo_by_intra_edges,
)


class _WholeIterationEmitter(_Emitter):
    """Every operation is emitted once as a VL-wide vector op (lanes
    ``0..VL-1``) and once per extra scalar iteration (lanes ``VL..``)."""

    def emit_component(self, members: list[int]) -> None:
        for uid in _topo_by_intra_edges(self.dep, members):
            op = self.loop.op_by_uid(uid)
            self.emit_vector(op)
            for lane in range(self.vector_width, self.factor):
                self.emit_scalar(op, lane)

    def liveout_map(self):
        from repro.vectorize.transform import LiveOut

        mapping = {}
        for reg in self.loop.live_out:
            producer = self.def_op.get(reg)
            if producer is not None:
                # The last iteration of each group runs in scalar form.
                mapping[reg.name] = LiveOut(
                    self.lane_defs[(producer.uid, self.factor - 1)]
                )
            else:
                mapping[reg.name] = LiveOut(reg)
        return mapping


def applicable(dep: LoopDependence) -> bool:
    """True when the loop qualifies for whole-iteration assignment."""
    if dep.loop.carried:
        return False
    return all(dep.is_vectorizable(op) for op in dep.loop.body)


def whole_iteration_transform(
    dep: LoopDependence,
    machine: MachineDescription,
    extra_scalar_iterations: int = 1,
    scratch_elems: int = DEFAULT_SCRATCH_ELEMS,
) -> TransformResult | None:
    """Transform a fully parallel loop by whole-iteration assignment.

    Returns ``None`` when the loop does not qualify (carried scalars or
    any non-vectorizable operation)."""
    if extra_scalar_iterations < 1:
        raise ValueError("extra_scalar_iterations must be >= 1")
    if not applicable(dep):
        return None

    vl = machine.vector_length
    factor = vl + extra_scalar_iterations
    assignment = {op.uid: Side.VECTOR for op in dep.loop.body}
    emitter = _WholeIterationEmitter(
        dep,
        machine,
        assignment,
        factor,
        suffix=".wia",
        scratch_elems=scratch_elems,
        vector_width=vl,
        # The unroll factor is never a multiple of VL, so vector memory
        # references cannot be aligned regardless of alignment knowledge.
        force_misaligned=True,
    )
    main_loop, liveout = emitter.build()
    from repro.ir.verifier import verify_loop

    verify_loop(main_loop)

    scalar_assignment = {op.uid: Side.SCALAR for op in dep.loop.body}
    cleanup_emitter = _Emitter(
        dep, machine, scalar_assignment, 1, ".cl", scratch_elems
    )
    cleanup, cleanup_liveout = cleanup_emitter.build()
    verify_loop(cleanup)

    return TransformResult(
        loop=main_loop,
        cleanup=cleanup,
        factor=factor,
        liveout_map=liveout,
        cleanup_liveout_map=cleanup_liveout,
        n_vector_ops=emitter.n_vector_ops,
        n_transfers=emitter.n_transfers,
        n_merges=emitter.n_merges,
    )
