"""Vector memory alignment modeling.

The target architectures require vector memory operations to address
vector-aligned locations.  A misaligned vector load is implemented as
aligned loads plus a merge extracting the desired elements; a misaligned
store additionally rewrites memory.  In a software-pipelined loop most of
the extra memory traffic is eliminated by reusing the aligned chunk from
the previous iteration [13, 40], leaving a steady-state overhead of one
merge operation per misaligned vector memory reference — which is what
both the partitioner's cost model and the loop transformer charge.  The
first iteration's priming load is emitted in the loop preheader.
"""

from __future__ import annotations

from repro.ir.loop import Loop
from repro.ir.operations import Operation, OpKind
from repro.machine.machine import AlignmentPolicy, MachineDescription
from repro.machine.resources import OpcodeInfo


def reference_is_misaligned(
    machine: MachineDescription,
    loop: Loop,
    op: Operation,
) -> bool:
    """Would vectorizing memory reference ``op`` require merges?

    Under ``ASSUME_MISALIGNED`` every reference pays; under
    ``ASSUME_ALIGNED`` none does; under ``ANALYZE`` the array's base
    alignment and the reference's constant offset decide, with symbolic
    offsets treated conservatively as misaligned.
    """
    if not op.kind.is_memory:
        raise ValueError(f"{op} is not a memory operation")
    policy = machine.alignment
    if policy is AlignmentPolicy.ASSUME_ALIGNED:
        return False
    if policy is AlignmentPolicy.ASSUME_MISALIGNED:
        return True
    assert op.subscript is not None
    inner = op.subscript.innermost
    if inner.has_symbols:
        return True
    info = loop.arrays[op.array or ""]
    return (info.alignment_offset + inner.offset) % machine.vector_length != 0


def merge_overhead_opcodes(
    machine: MachineDescription,
    loop: Loop,
    op: Operation,
) -> list[OpcodeInfo]:
    """Steady-state realignment opcodes charged when ``op`` is vectorized."""
    if not machine.needs_alignment_merges:
        return []
    if not reference_is_misaligned(machine, loop, op):
        return []
    return [machine.opcode_info_for(OpKind.MERGE, op.dtype, True)]
