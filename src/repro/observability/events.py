"""Structured decision-point events (the optimization-remarks half).

Where spans answer "where did the time go" and counters answer "how much
work was done", events answer "*why* did the compiler do that": a
register-allocation retry carries the II it bumped to and the files that
overflowed; a scheduler budget exhaustion carries the II and restart
variant that gave up.  Each event records the span path that was open
when it fired, so a trace viewer can attach remarks to phases.
"""

from __future__ import annotations

from dataclasses import dataclass, field


def jsonify(value: object) -> object:
    """Coerce event/attr payloads to JSON-stable types so an exported
    trace round-trips through ``json.dumps``/``loads`` unchanged."""
    if isinstance(value, dict):
        return {str(k): jsonify(v) for k, v in value.items()}
    if isinstance(value, (list, tuple, set, frozenset)):
        items = sorted(value, key=repr) if isinstance(value, (set, frozenset)) else value
        return [jsonify(v) for v in items]
    if isinstance(value, bool) or value is None:
        return value
    if isinstance(value, (int, float, str)):
        return value
    return repr(value)


@dataclass
class Event:
    """One structured remark."""

    seq: int
    name: str
    phase: str
    data: dict[str, object] = field(default_factory=dict)

    def to_dict(self) -> dict[str, object]:
        return {
            "seq": self.seq,
            "name": self.name,
            "phase": self.phase,
            "data": jsonify(self.data),
        }


class EventLog:
    """Append-only event list for one recording session."""

    def __init__(self) -> None:
        self.events: list[Event] = []

    def emit(self, name: str, phase: str, data: dict[str, object]) -> Event:
        event = Event(seq=len(self.events), name=name, phase=phase, data=data)
        self.events.append(event)
        return event

    def by_name(self, name: str) -> list[Event]:
        return [e for e in self.events if e.name == name]

    def counts(self) -> dict[str, int]:
        counts: dict[str, int] = {}
        for event in self.events:
            counts[event.name] = counts.get(event.name, 0) + 1
        return counts

    def reset(self) -> None:
        self.events.clear()

    def __len__(self) -> int:
        return len(self.events)

    def to_dict(self) -> list[dict[str, object]]:
        return [e.to_dict() for e in self.events]
