"""Structured decision-point events (the optimization-remarks half).

Where spans answer "where did the time go" and counters answer "how much
work was done", events answer "*why* did the compiler do that": a
register-allocation retry carries the II it bumped to and the files that
overflowed; a scheduler budget exhaustion carries the II and restart
variant that gave up.  Each event records the span path that was open
when it fired, so a trace viewer can attach remarks to phases.
"""

from __future__ import annotations

from dataclasses import dataclass, field


def jsonify(value: object) -> object:
    """Coerce event/attr payloads to JSON-stable types so an exported
    trace round-trips through ``json.dumps``/``loads`` unchanged."""
    if isinstance(value, dict):
        return {str(k): jsonify(v) for k, v in value.items()}
    if isinstance(value, (list, tuple, set, frozenset)):
        items = sorted(value, key=repr) if isinstance(value, (set, frozenset)) else value
        return [jsonify(v) for v in items]
    if isinstance(value, bool) or value is None:
        return value
    if isinstance(value, (int, float, str)):
        return value
    return repr(value)


@dataclass
class Event:
    """One structured decision-point record."""

    seq: int
    name: str
    phase: str
    data: dict[str, object] = field(default_factory=dict)

    def to_dict(self) -> dict[str, object]:
        return {
            "seq": self.seq,
            "name": self.name,
            "phase": self.phase,
            "data": jsonify(self.data),
        }


@dataclass
class Remark:
    """One optimization remark — the ``-Rpass`` analogue.

    Remarks are the explainability layer on top of events: each one ties
    a *decision* (``pass_name`` + machine-readable ``reason`` code) to the
    loop it was made for and a human-readable one-line ``message``, with
    the structured evidence in ``data``.  Reason codes are catalogued in
    ``docs/observability.md``.
    """

    seq: int
    pass_name: str
    loop: str
    reason: str
    message: str
    phase: str
    data: dict[str, object] = field(default_factory=dict)

    def to_dict(self) -> dict[str, object]:
        return {
            "seq": self.seq,
            "pass": self.pass_name,
            "loop": self.loop,
            "reason": self.reason,
            "message": self.message,
            "phase": self.phase,
            "data": jsonify(self.data),
        }

    def render(self) -> str:
        return f"[{self.pass_name}:{self.reason}] {self.loop}: {self.message}"


class EventLog:
    """Append-only event and remark lists for one recording session."""

    def __init__(self) -> None:
        self.events: list[Event] = []
        self.remarks: list[Remark] = []

    def emit(self, name: str, phase: str, data: dict[str, object]) -> Event:
        event = Event(seq=len(self.events), name=name, phase=phase, data=data)
        self.events.append(event)
        return event

    def remark(
        self,
        pass_name: str,
        loop: str,
        reason: str,
        message: str,
        phase: str,
        data: dict[str, object],
    ) -> Remark:
        record = Remark(
            seq=len(self.remarks),
            pass_name=pass_name,
            loop=loop,
            reason=reason,
            message=message,
            phase=phase,
            data=data,
        )
        self.remarks.append(record)
        return record

    def by_name(self, name: str) -> list[Event]:
        return [e for e in self.events if e.name == name]

    def remarks_for(
        self, loop: str | None = None, pass_name: str | None = None
    ) -> list[Remark]:
        return [
            r
            for r in self.remarks
            if (loop is None or r.loop == loop)
            and (pass_name is None or r.pass_name == pass_name)
        ]

    def counts(self) -> dict[str, int]:
        counts: dict[str, int] = {}
        for event in self.events:
            counts[event.name] = counts.get(event.name, 0) + 1
        return counts

    def reset(self) -> None:
        self.events.clear()
        self.remarks.clear()

    def __len__(self) -> int:
        return len(self.events)

    def to_dict(self) -> list[dict[str, object]]:
        return [e.to_dict() for e in self.events]

    def remarks_to_dict(self) -> list[dict[str, object]]:
        return [r.to_dict() for r in self.remarks]
