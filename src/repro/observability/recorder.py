"""The :class:`Recorder` facade and the process-wide active recorder.

Instrumented code follows one pattern::

    rec = active_recorder()           # one global read per phase entry
    with maybe_span(rec, "schedule", loop=loop.name):
        ...
        if rec is not None:
            rec.count("sched.ii_attempts", attempts)
            rec.event("sched.budget_exhausted", ii=ii)

When nothing is recording, ``active_recorder()`` returns ``None`` (a
module-global read) and ``maybe_span`` returns one shared null context
manager — no allocation, no timing calls, no dictionary traffic — so the
compiler pays nothing for carrying the instrumentation.

Enablement, in precedence order:

1. explicitly, via :func:`install` / :func:`recording` (what the CLI
   ``--stats`` / ``--trace-json`` flags do);
2. the ``REPRO_STATS`` / ``REPRO_TRACE`` / ``REPRO_PROFILE`` environment
   variables, checked once at import: ``REPRO_STATS=1`` installs a
   counters-only recorder that prints the stats table to stderr at exit;
   ``REPRO_TRACE=path`` additionally records spans/events and writes a
   JSON trace to ``path`` at exit; ``REPRO_PROFILE=path`` writes a
   hierarchical profile (see :mod:`repro.profiling`) at exit.  This
   reaches runs that never parse CLI flags (pytest, pytest-benchmark,
   library embedders).
"""

from __future__ import annotations

import os
from contextlib import nullcontext

from repro.observability.events import EventLog
from repro.observability.stats import StatRegistry
from repro.observability.trace import SpanContext, SpanTracer

_NULL_SPAN = nullcontext()


class Recorder:
    """One recording session: a span forest, a stat registry, an event log.

    ``trace=False`` turns spans into no-ops (counters/events still
    record); ``stats=False`` turns counters/distributions into no-ops.
    """

    def __init__(self, *, trace: bool = True, stats: bool = True):
        self.trace_enabled = trace
        self.stats_enabled = stats
        self.tracer = SpanTracer()
        self.stats = StatRegistry()
        self.events = EventLog()

    # -- spans ---------------------------------------------------------

    def span(self, name: str, **attrs: object):
        if not self.trace_enabled:
            return _NULL_SPAN
        return SpanContext(self.tracer, name, attrs)

    # -- counters / distributions --------------------------------------

    def count(self, name: str, n: int = 1) -> None:
        if self.stats_enabled:
            self.stats.add(name, n)
        if self.trace_enabled:
            # Attribute the effort to the innermost open phase so the
            # profiler can turn the span tree into a call-tree profile.
            span = self.tracer.current()
            if span is not None:
                span.count(name, n)

    def observe(self, name: str, value: float) -> None:
        if self.stats_enabled:
            self.stats.observe(name, value)

    def counter(self, name: str) -> int:
        return self.stats.counter(name)

    # -- events --------------------------------------------------------

    def event(self, name: str, **data: object):
        return self.events.emit(name, self.tracer.path(), data)

    def remark(
        self,
        pass_name: str,
        loop: str,
        reason: str,
        message: str,
        **data: object,
    ):
        """One optimization remark: why a pass decided what it decided."""
        return self.events.remark(
            pass_name, loop, reason, message, self.tracer.path(), data
        )

    # ------------------------------------------------------------------

    def reset(self) -> None:
        self.tracer.reset()
        self.stats.reset()
        self.events.reset()

    def to_dict(self) -> dict[str, object]:
        from repro.observability.export import recorder_to_dict

        return recorder_to_dict(self)


_ACTIVE: Recorder | None = None


def active_recorder() -> Recorder | None:
    """The installed recorder, or ``None`` when instrumentation is off."""
    return _ACTIVE


def install(recorder: Recorder | None) -> Recorder | None:
    """Make ``recorder`` the process-wide active recorder (``None`` turns
    instrumentation off).  Returns the previously active recorder."""
    global _ACTIVE
    previous = _ACTIVE
    _ACTIVE = recorder
    return previous


class _RecordingContext:
    """Install a recorder for a ``with`` block, restoring the previous one."""

    def __init__(self, recorder: Recorder):
        self.recorder = recorder
        self._previous: Recorder | None = None

    def __enter__(self) -> Recorder:
        self._previous = install(self.recorder)
        return self.recorder

    def __exit__(self, *exc) -> None:
        install(self._previous)


def recording(
    recorder: Recorder | None = None, *, trace: bool = True, stats: bool = True
) -> _RecordingContext:
    """``with recording() as rec:`` — scoped instrumentation session."""
    return _RecordingContext(recorder or Recorder(trace=trace, stats=stats))


def maybe_span(rec: Recorder | None, name: str, **attrs: object):
    """A span on ``rec``, or the shared null context when ``rec`` is None."""
    if rec is None:
        return _NULL_SPAN
    return rec.span(name, **attrs)


# ----------------------------------------------------------------------
# Environment-variable fallback (checked once, at import).


def _env_truthy(value: str | None) -> bool:
    return bool(value) and value.strip().lower() not in ("0", "false", "no", "off", "")


def _install_from_env() -> None:
    trace_path = os.environ.get("REPRO_TRACE", "").strip()
    profile_path = os.environ.get("REPRO_PROFILE", "").strip()
    want_stats = _env_truthy(os.environ.get("REPRO_STATS"))
    if not trace_path and not profile_path and not want_stats:
        return
    recorder = Recorder(trace=bool(trace_path or profile_path), stats=True)
    install(recorder)

    import atexit

    def _flush() -> None:
        import sys

        from repro.observability.export import render_stats_table, write_trace

        if trace_path:
            write_trace(recorder, trace_path)
        if profile_path:
            from repro.profiling import Profile, write_profile

            write_profile(Profile.from_recorder(recorder), profile_path)
        if want_stats:
            print(render_stats_table(recorder), file=sys.stderr)

    atexit.register(_flush)


_install_from_env()
