"""Nested phase spans (the ``-time-passes`` half of the instrumentation).

A :class:`Span` is one timed region — a compiler phase, a benchmark
evaluation, a whole ``compile_loop`` call — with a name, free-form
attributes, and children for the phases nested inside it.  The
:class:`SpanTracer` keeps the stack of open spans and the forest of
completed roots.  Timing uses ``time.perf_counter_ns`` so sub-millisecond
phases are resolvable.

The tracer itself is always cheap; the *zero-overhead-when-disabled*
guarantee lives one level up, in :mod:`repro.observability.recorder`,
which hands out a shared null context manager when tracing is off so
instrumented code never reaches this module.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field


@dataclass
class Span:
    """One timed region of the pipeline.

    ``counters`` holds the effort counters recorded while this span was
    the *innermost* open span — the per-phase attribution the profiler
    turns into a call-tree profile.  They are "self" counters: a span's
    cumulative effort is its own plus its descendants'.
    """

    name: str
    attrs: dict[str, object]
    start_ns: int
    end_ns: int | None = None
    children: list[Span] = field(default_factory=list)
    counters: dict[str, int] = field(default_factory=dict)

    @property
    def duration_ns(self) -> int:
        if self.end_ns is None:
            return 0
        return self.end_ns - self.start_ns

    @property
    def self_ns(self) -> int:
        """Time spent in this span excluding its children."""
        return self.duration_ns - sum(c.duration_ns for c in self.children)

    def count(self, name: str, n: int = 1) -> None:
        self.counters[name] = self.counters.get(name, 0) + n

    def to_dict(self) -> dict[str, object]:
        return {
            "name": self.name,
            "attrs": dict(self.attrs),
            "start_ns": self.start_ns,
            "duration_ns": self.duration_ns,
            "counters": dict(sorted(self.counters.items())),
            "children": [c.to_dict() for c in self.children],
        }

    def walk(self):
        """Yield this span and every descendant, preorder."""
        yield self
        for child in self.children:
            yield from child.walk()


class SpanTracer:
    """Stack of open spans plus the forest of finished roots."""

    def __init__(self) -> None:
        self.roots: list[Span] = []
        self._stack: list[Span] = []

    def start(self, name: str, attrs: dict[str, object]) -> Span:
        span = Span(name=name, attrs=attrs, start_ns=time.perf_counter_ns())
        if self._stack:
            self._stack[-1].children.append(span)
        else:
            self.roots.append(span)
        self._stack.append(span)
        return span

    def finish(self, span: Span) -> None:
        span.end_ns = time.perf_counter_ns()
        # Tolerate mismatched finishes (an exception may unwind several
        # spans): pop until the finished span is off the stack.
        while self._stack:
            top = self._stack.pop()
            if top is span:
                break
            if top.end_ns is None:
                top.end_ns = span.end_ns

    def path(self) -> str:
        """Slash-joined names of the currently open spans."""
        return "/".join(s.name for s in self._stack)

    def current(self) -> Span | None:
        """The innermost open span, or ``None`` outside any span."""
        return self._stack[-1] if self._stack else None

    def reset(self) -> None:
        self.roots.clear()
        self._stack.clear()

    def aggregate(self) -> dict[str, tuple[int, int, int]]:
        """Per span name: (count, total ns, self ns) over the whole forest."""
        agg: dict[str, tuple[int, int, int]] = {}
        for root in self.roots:
            for span in root.walk():
                count, total, self_ns = agg.get(span.name, (0, 0, 0))
                agg[span.name] = (
                    count + 1,
                    total + span.duration_ns,
                    self_ns + span.self_ns,
                )
        return agg


class SpanContext:
    """Context manager opening one span on a tracer."""

    __slots__ = ("_tracer", "_name", "_attrs", "span")

    def __init__(self, tracer: SpanTracer, name: str, attrs: dict[str, object]):
        self._tracer = tracer
        self._name = name
        self._attrs = attrs
        self.span: Span | None = None

    def __enter__(self) -> Span:
        self.span = self._tracer.start(self._name, self._attrs)
        return self.span

    def __exit__(self, *exc) -> None:
        assert self.span is not None
        self._tracer.finish(self.span)
