"""Sinks: the human-readable stats table and the machine-readable trace.

``render_stats_table`` is what ``--stats`` prints — phase wall times
aggregated by span name, every counter, every distribution, and a count
of structured events by kind.  ``write_trace`` is what ``--trace-json``
writes — the full span forest with attributes, plus counters and the
ordered event log, as one JSON document (schema documented in
``docs/observability.md``).
"""

from __future__ import annotations

import json

from repro.observability.events import jsonify
from repro.observability.recorder import Recorder

TRACE_SCHEMA_VERSION = 3


def recorder_to_dict(recorder: Recorder) -> dict[str, object]:
    """The complete session as JSON-stable plain data."""
    stats = recorder.stats.to_dict()
    spans = [jsonify(root.to_dict()) for root in recorder.tracer.roots]
    return {
        "schema_version": TRACE_SCHEMA_VERSION,
        "spans": spans,
        "counters": stats["counters"],
        "distributions": stats["distributions"],
        "events": [jsonify(e) for e in recorder.events.to_dict()],
        "remarks": [jsonify(r) for r in recorder.events.remarks_to_dict()],
    }


def write_trace(recorder: Recorder, path: str) -> None:
    with open(path, "w", encoding="utf-8") as f:
        json.dump(recorder_to_dict(recorder), f, indent=2, sort_keys=True)
        f.write("\n")


# ----------------------------------------------------------------------


def _rows_to_table(headers: list[str], rows: list[list[str]]) -> list[str]:
    widths = [
        max(len(headers[i]), *(len(r[i]) for r in rows)) if rows else len(headers[i])
        for i in range(len(headers))
    ]
    fmt = "  ".join(f"{{:<{w}}}" if i == 0 else f"{{:>{w}}}" for i, w in enumerate(widths))
    lines = [fmt.format(*headers), fmt.format(*("-" * w for w in widths))]
    lines += [fmt.format(*row) for row in rows]
    return lines


def render_remarks(
    recorder: Recorder,
    loop: str | None = None,
    pass_name: str | None = None,
) -> str:
    """The optimization remarks of one session, one line per remark,
    grouped by loop (what ``--explain`` prints)."""
    remarks = recorder.events.remarks_for(loop=loop, pass_name=pass_name)
    if not remarks:
        return "(no remarks recorded)"
    lines: list[str] = []
    current: str | None = None
    for r in remarks:
        if r.loop != current:
            if current is not None:
                lines.append("")
            lines.append(f"remarks for loop {r.loop}:")
            current = r.loop
        lines.append(f"  {r.render()}")
    return "\n".join(lines)


def render_stats_table(recorder: Recorder) -> str:
    """The ``--stats`` report for one recording session."""
    lines: list[str] = ["=== compilation statistics ==="]

    agg = recorder.tracer.aggregate()
    if agg:
        rows = [
            [name, str(count), f"{total / 1e6:.3f}", f"{self_ns / 1e6:.3f}"]
            for name, (count, total, self_ns) in sorted(
                agg.items(), key=lambda kv: -kv[1][1]
            )
        ]
        lines += ["", "-- phase wall time --"]
        lines += _rows_to_table(["phase", "calls", "total ms", "self ms"], rows)

    counters = recorder.stats.counters
    if counters:
        lines += ["", "-- counters --"]
        lines += _rows_to_table(
            ["counter", "value"],
            [[name, str(value)] for name, value in sorted(counters.items())],
        )

    dists = recorder.stats.distributions
    if dists:
        rows = [
            [name, str(d.n), f"{d.mean:.2f}", f"{d.min:g}", f"{d.max:g}"]
            for name, d in sorted(dists.items())
        ]
        lines += ["", "-- distributions --"]
        lines += _rows_to_table(["distribution", "n", "mean", "min", "max"], rows)

    event_counts = recorder.events.counts()
    if event_counts:
        lines += ["", "-- events --"]
        lines += _rows_to_table(
            ["event", "count"],
            [[name, str(count)] for name, count in sorted(event_counts.items())],
        )

    if len(lines) == 1:
        lines.append("(nothing recorded)")
    return "\n".join(lines)
