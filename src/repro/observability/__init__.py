"""Compiler-pipeline observability: spans, counters, structured events.

Modeled on LLVM's ``-time-passes`` / ``-stats`` / optimization-remarks
trio.  One :class:`Recorder` holds a session; installing it (explicitly,
via the CLI ``--stats`` / ``--trace-json`` flags, or via the
``REPRO_STATS`` / ``REPRO_TRACE`` environment variables) turns on the
instrumentation wired through the compilation pipeline.  With no
recorder installed every instrumentation site is a single ``None`` check.

Typical library use::

    from repro.observability import recording, render_stats_table

    with recording() as rec:
        compile_loop(loop, machine, Strategy.SELECTIVE)
    print(render_stats_table(rec))
"""

from repro.observability.events import Event, EventLog, Remark
from repro.observability.export import (
    TRACE_SCHEMA_VERSION,
    recorder_to_dict,
    render_remarks,
    render_stats_table,
    write_trace,
)
from repro.observability.recorder import (
    Recorder,
    active_recorder,
    install,
    maybe_span,
    recording,
)
from repro.observability.schema import (
    SUPPORTED_TRACE_VERSIONS,
    TraceSchemaError,
    load_trace,
    validate_trace,
)
from repro.observability.stats import Distribution, StatRegistry
from repro.observability.trace import Span, SpanTracer

__all__ = [
    "Distribution",
    "Event",
    "EventLog",
    "Recorder",
    "Remark",
    "SUPPORTED_TRACE_VERSIONS",
    "Span",
    "SpanTracer",
    "StatRegistry",
    "TRACE_SCHEMA_VERSION",
    "TraceSchemaError",
    "active_recorder",
    "install",
    "load_trace",
    "maybe_span",
    "recorder_to_dict",
    "recording",
    "render_remarks",
    "render_stats_table",
    "validate_trace",
    "write_trace",
]
