"""Trace-document reader and schema validator.

``write_trace`` emits one JSON document per recording session; this
module is its counterpart: :func:`validate_trace` checks a parsed
document against the schema (raising :class:`TraceSchemaError` with the
offending path), and :func:`load_trace` reads + validates + *normalizes*
a document so consumers — the profiler, the diff tool, trace viewers —
can rely on every field being present regardless of which schema version
wrote it:

* version 1 documents lack the ``remarks`` array (added in v2);
* version 2 documents lack per-span ``counters`` (added in v3).

Both are filled in with empty defaults on load, so a loaded trace always
has the version-3 shape.  Validation is structural (types and required
keys), not semantic: it guards against silent schema drift, not against
a compiler emitting surprising span names.
"""

from __future__ import annotations

import json

#: Schema versions this reader understands.
SUPPORTED_TRACE_VERSIONS = (1, 2, 3)

_SPAN_KEYS = {
    "name": str,
    "attrs": dict,
    "start_ns": int,
    "duration_ns": int,
    "children": list,
}

_EVENT_KEYS = {"seq": int, "name": str, "phase": str, "data": dict}

_REMARK_KEYS = {
    "seq": int,
    "pass": str,
    "loop": str,
    "reason": str,
    "message": str,
    "phase": str,
    "data": dict,
}

_DISTRIBUTION_KEYS = {"n", "total", "mean", "min", "max"}


class TraceSchemaError(ValueError):
    """A trace document does not conform to the schema.

    ``path`` locates the offending field (``spans[0].children[2].name``).
    """

    def __init__(self, path: str, message: str):
        self.path = path
        super().__init__(f"trace schema violation at {path}: {message}")


def _require(condition: bool, path: str, message: str) -> None:
    if not condition:
        raise TraceSchemaError(path, message)


def _validate_span(span: object, path: str) -> None:
    _require(isinstance(span, dict), path, "span must be an object")
    assert isinstance(span, dict)
    for key, typ in _SPAN_KEYS.items():
        _require(key in span, f"{path}.{key}", "missing required key")
        _require(
            isinstance(span[key], typ),
            f"{path}.{key}",
            f"expected {typ.__name__}, got {type(span[key]).__name__}",
        )
    counters = span.get("counters", {})
    _require(
        isinstance(counters, dict), f"{path}.counters", "must be an object"
    )
    for name, value in counters.items():
        _require(
            isinstance(value, int) and not isinstance(value, bool),
            f"{path}.counters[{name!r}]",
            "counter values must be integers",
        )
    for i, child in enumerate(span["children"]):
        _validate_span(child, f"{path}.children[{i}]")


def _validate_record(
    record: object, keys: dict[str, type], path: str, what: str
) -> None:
    _require(isinstance(record, dict), path, f"{what} must be an object")
    assert isinstance(record, dict)
    for key, typ in keys.items():
        _require(key in record, f"{path}.{key}", "missing required key")
        _require(
            isinstance(record[key], typ),
            f"{path}.{key}",
            f"expected {typ.__name__}, got {type(record[key]).__name__}",
        )


def validate_trace(document: object) -> dict[str, object]:
    """Validate one parsed trace document; returns it on success."""
    _require(isinstance(document, dict), "$", "trace must be an object")
    assert isinstance(document, dict)
    version = document.get("schema_version")
    _require(
        version in SUPPORTED_TRACE_VERSIONS,
        "$.schema_version",
        f"unsupported version {version!r} "
        f"(supported: {SUPPORTED_TRACE_VERSIONS})",
    )
    for key in ("spans", "events"):
        _require(key in document, f"$.{key}", "missing required key")
        _require(
            isinstance(document[key], list), f"$.{key}", "must be an array"
        )
    _require("counters" in document, "$.counters", "missing required key")
    _require(
        isinstance(document["counters"], dict),
        "$.counters",
        "must be an object",
    )
    for name, value in document["counters"].items():
        _require(
            isinstance(value, int) and not isinstance(value, bool),
            f"$.counters[{name!r}]",
            "counter values must be integers",
        )
    distributions = document.get("distributions", {})
    _require(
        isinstance(distributions, dict),
        "$.distributions",
        "must be an object",
    )
    for name, dist in distributions.items():
        _require(
            isinstance(dist, dict)
            and _DISTRIBUTION_KEYS <= set(dist.keys()),
            f"$.distributions[{name!r}]",
            f"must be an object with keys {sorted(_DISTRIBUTION_KEYS)}",
        )
    for i, span in enumerate(document["spans"]):
        _validate_span(span, f"$.spans[{i}]")
    for i, event in enumerate(document["events"]):
        _validate_record(event, _EVENT_KEYS, f"$.events[{i}]", "event")
    if version >= 2:
        _require("remarks" in document, "$.remarks", "missing required key")
    remarks = document.get("remarks", [])
    _require(isinstance(remarks, list), "$.remarks", "must be an array")
    for i, remark in enumerate(remarks):
        _validate_record(remark, _REMARK_KEYS, f"$.remarks[{i}]", "remark")
    return document


def _normalize_span(span: dict[str, object]) -> None:
    span.setdefault("counters", {})
    for child in span["children"]:  # type: ignore[union-attr]
        _normalize_span(child)


def load_trace(source: str | dict[str, object]) -> dict[str, object]:
    """Read (a path to) a trace document, validate it, and normalize it
    to the current schema shape: ``remarks`` (v1) and per-span
    ``counters`` (v1/v2) are filled with empty defaults."""
    if isinstance(source, str):
        with open(source, encoding="utf-8") as f:
            document = json.load(f)
    else:
        document = source
    validate_trace(document)
    document.setdefault("remarks", [])
    document.setdefault("distributions", {})
    for span in document["spans"]:
        _normalize_span(span)
    return document
