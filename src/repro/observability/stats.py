"""Named counters and value distributions (the ``-stats`` half).

Counters are plain monotonically increasing integers keyed by dotted
names (``kl.moves_evaluated``, ``sched.ii_attempts``).  Distributions
remember count / sum / min / max of every observed value — enough for a
stats table without retaining the samples.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass
class Distribution:
    """Streaming summary of observed values."""

    n: int = 0
    total: float = 0.0
    min: float = float("inf")
    max: float = float("-inf")

    def observe(self, value: float) -> None:
        self.n += 1
        self.total += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value

    @property
    def mean(self) -> float:
        return self.total / self.n if self.n else 0.0

    def to_dict(self) -> dict[str, float]:
        return {
            "n": self.n,
            "total": self.total,
            "mean": self.mean,
            "min": self.min if self.n else 0.0,
            "max": self.max if self.n else 0.0,
        }


class StatRegistry:
    """Counters and distributions for one recording session."""

    def __init__(self) -> None:
        self.counters: dict[str, int] = {}
        self.distributions: dict[str, Distribution] = {}

    def add(self, name: str, n: int = 1) -> None:
        self.counters[name] = self.counters.get(name, 0) + n

    def observe(self, name: str, value: float) -> None:
        dist = self.distributions.get(name)
        if dist is None:
            dist = self.distributions[name] = Distribution()
        dist.observe(value)

    def counter(self, name: str) -> int:
        return self.counters.get(name, 0)

    def reset(self) -> None:
        self.counters.clear()
        self.distributions.clear()

    def to_dict(self) -> dict[str, object]:
        return {
            "counters": dict(sorted(self.counters.items())),
            "distributions": {
                name: dist.to_dict()
                for name, dist in sorted(self.distributions.items())
            },
        }
