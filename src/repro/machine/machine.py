"""Parametric VLIW machine description.

The description answers every question the backend asks:

* which resources exist (:class:`~repro.machine.resources.ResourceClass`),
* what a given IR operation costs in resources and latency
  (:meth:`MachineDescription.opcode_info`),
* how operands move between scalar and vector register files
  (:class:`CommunicationModel`),
* whether vector memory operations must be aligned and what misalignment
  costs (:class:`AlignmentPolicy`), and
* register-file capacities for allocation.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.ir.operations import Operation, OpKind
from repro.ir.types import ScalarType
from repro.machine.resources import OpcodeInfo, ResourceClass, ResourceUse


class CommunicationModel(enum.Enum):
    """How operands transfer between scalar and vector registers.

    ``THROUGH_MEMORY`` matches the paper's evaluated machine: a
    vector-to-scalar transfer is a vector store followed by ``VL`` scalar
    loads; scalar-to-vector is ``VL`` scalar stores followed by a vector
    load.  ``FREE`` matches the Figure 1 toy machine, where the example
    assumes no explicit transfer operations are required.
    """

    THROUGH_MEMORY = "through_memory"
    FREE = "free"


class AlignmentPolicy(enum.Enum):
    """Vector memory alignment regime.

    ``ASSUME_MISALIGNED``: no alignment information; every vector memory
    operation pays the merge cost (steady-state, with previous-iteration
    reuse: one merge per vector memory op).  ``ASSUME_ALIGNED``: perfect
    alignment information and aligned data; no merges.  ``ANALYZE``: use
    per-array alignment offsets to decide per reference.
    """

    ASSUME_MISALIGNED = "assume_misaligned"
    ASSUME_ALIGNED = "assume_aligned"
    ANALYZE = "analyze"


@dataclass(frozen=True)
class LatencyTable:
    """Operation latencies in cycles (Table 1 defaults)."""

    int_alu: int = 1
    int_mul: int = 3
    int_div: int = 36
    fp_alu: int = 4
    fp_mul: int = 4
    fp_div: int = 32
    load: int = 3
    store: int = 1
    branch: int = 1
    merge: int = 1


@dataclass(frozen=True)
class RegisterFiles:
    """Architected register-file capacities (Table 1 defaults)."""

    scalar_int: int = 128
    scalar_fp: int = 128
    vector_int: int = 64
    vector_fp: int = 64
    predicate: int = 64


@dataclass(frozen=True)
class MachineDescription:
    """A statically scheduled machine with optional short-vector support."""

    name: str
    resources: tuple[ResourceClass, ...]
    vector_length: int
    latencies: LatencyTable = LatencyTable()
    register_files: RegisterFiles = RegisterFiles()
    communication: CommunicationModel = CommunicationModel.THROUGH_MEMORY
    alignment: AlignmentPolicy = AlignmentPolicy.ASSUME_MISALIGNED
    # Resource class names used by opcode selection.
    slot_resource: str = "slot"
    int_resource: str = "int"
    fp_resource: str = "fp"
    mem_resource: str = "ls"
    branch_resource: str = "br"
    vector_resource: str = "vec"
    merge_resource: str = "vmerge"
    pipelined_divide: bool = False
    # On some machines (the Figure 1 example) vector memory operations
    # consume the per-cycle vector issue token rather than a load/store unit.
    vector_mem_uses_vector_unit: bool = False
    # Whether lowering materializes loop-control and addressing operations
    # (pointer bumps, induction increment, loop-back branch).  The Figure 1
    # toy machine abstracts these away.
    model_loop_overhead: bool = True

    def __post_init__(self) -> None:
        names = [r.name for r in self.resources]
        if len(set(names)) != len(names):
            raise ValueError("duplicate resource class names")
        if self.vector_length < 2:
            raise ValueError("vector length must be >= 2")

    # ------------------------------------------------------------------

    def _memo(self, slot: str) -> dict:
        """Per-instance memo dict (lazily created; excluded from pickles
        so cache keys and serialized machines stay canonical)."""
        memo = self.__dict__.get(slot)
        if memo is None:
            memo = {}
            object.__setattr__(self, slot, memo)
        return memo

    def __getstate__(self) -> dict:
        state = dict(self.__dict__)
        for slot in ("_rc_memo", "_opcode_memo", "_layout_memo", "_spec_memo"):
            state.pop(slot, None)
        return state

    def __setstate__(self, state: dict) -> None:
        self.__dict__.update(state)

    def instance_layout(self) -> tuple[tuple[str, ...], dict[str, tuple[int, int]]]:
        """The flat resource-instance layout, memoized: every instance
        name in declaration order, plus each class's ``(first index,
        count)`` span in that flat order.  The bitset reservation table
        addresses instances by flat index instead of name."""
        memo = self._memo("_layout_memo")
        layout = memo.get("layout")
        if layout is None:
            names: list[str] = []
            spans: dict[str, tuple[int, int]] = {}
            for rc in self.resources:
                spans[rc.name] = (len(names), rc.count)
                names.extend(rc.instances())
            layout = (tuple(names), spans)
            memo["layout"] = layout
        return layout

    def reservation_spec(self, info: OpcodeInfo) -> tuple[tuple[int, int, int], ...]:
        """An opcode's resource uses resolved against the flat instance
        layout, memoized: one ``(first index, instance count, busy
        cycles)`` triple per use, in use order — everything the modulo
        reservation table's bitmask scan needs, with no name lookups."""
        memo = self._memo("_spec_memo")
        spec = memo.get(info)
        if spec is None:
            _, spans = self.instance_layout()
            spec = tuple(
                (*spans[use.resource], use.cycles) for use in info.uses
            )
            memo[info] = spec
        return spec

    def resource_class(self, name: str) -> ResourceClass:
        memo = self._memo("_rc_memo")
        rc = memo.get(name)
        if rc is not None:
            return rc
        for r in self.resources:
            if r.name == name:
                memo[name] = r
                return r
        raise KeyError(f"machine {self.name!r} has no resource class {name!r}")

    def has_resource(self, name: str) -> bool:
        return any(r.name == name for r in self.resources)

    @property
    def supports_vectors(self) -> bool:
        return self.has_resource(self.vector_resource)

    @property
    def needs_alignment_merges(self) -> bool:
        return self.alignment is not AlignmentPolicy.ASSUME_ALIGNED

    # ------------------------------------------------------------------
    # Opcode selection

    def opcode_info(self, op: Operation) -> OpcodeInfo:
        """Resource requirements and latency for ``op`` on this machine."""
        return self.opcode_info_for(op.kind, op.dtype, op.is_vector)

    def opcode_info_for(
        self, kind: OpKind, dtype: ScalarType, is_vector: bool
    ) -> OpcodeInfo:
        """Memoized: opcode selection is pure per machine, and the
        partitioner/scheduler fast paths resolve the same opcodes for
        every probe, dependence edge, and reservation scan."""
        memo = self._memo("_opcode_memo")
        key = (kind, dtype, is_vector)
        info = memo.get(key)
        if info is None:
            info = self._select_opcode(kind, dtype, is_vector)
            memo[key] = info
        return info

    def _select_opcode(
        self, kind: OpKind, dtype: ScalarType, is_vector: bool
    ) -> OpcodeInfo:
        lat = self.latencies
        uses: list[ResourceUse] = [ResourceUse(self.slot_resource)]

        def add_unit(name: str, cycles: int = 1) -> None:
            # Machines that expose only issue slots (the Figure 1 example)
            # simply omit the functional-unit classes.
            if self.has_resource(name):
                uses.append(ResourceUse(name, cycles))

        if kind.is_overhead:
            if is_vector:
                raise ValueError("overhead operations are never vector")
            if kind is OpKind.CBR:
                add_unit(self.branch_resource)
                return OpcodeInfo("cbr", tuple(uses), lat.branch)
            add_unit(self.int_resource)
            return OpcodeInfo(kind.value, tuple(uses), lat.int_alu)

        if kind in (OpKind.PACK, OpKind.EXTRACT):
            if self.communication is not CommunicationModel.FREE:
                raise ValueError(
                    f"machine {self.name!r} transfers operands through "
                    "memory; pack/extract are not available"
                )
            # A free operand network: no resources, no latency.
            return OpcodeInfo(kind.value, (), 0)

        if kind is OpKind.MERGE:
            if not self.has_resource(self.merge_resource):
                raise ValueError(
                    f"machine {self.name!r} has no merge unit but a merge "
                    "operation was selected"
                )
            uses.append(ResourceUse(self.merge_resource))
            return OpcodeInfo("vmerge", tuple(uses), lat.merge)

        mnemonic = ("v" if is_vector else "") + kind.value

        if kind.is_memory:
            add_unit(self.mem_resource)
            if is_vector:
                if not self.supports_vectors:
                    raise ValueError(
                        f"machine {self.name!r} has no vector support"
                    )
                if self.vector_mem_uses_vector_unit:
                    uses.append(ResourceUse(self.vector_resource))
            latency = lat.load if kind is OpKind.LOAD else lat.store
            return OpcodeInfo(mnemonic, tuple(uses), latency)

        # Arithmetic: scalar ops use int/fp units, vector ops the vector unit.
        latency, blocking = self._arith_latency(kind, dtype)
        cycles = blocking if not self.pipelined_divide else 1
        if is_vector:
            if not self.supports_vectors:
                raise ValueError(f"machine {self.name!r} has no vector unit")
            uses.append(ResourceUse(self.vector_resource, cycles))
        elif dtype.is_float:
            add_unit(self.fp_resource, cycles)
        else:
            add_unit(self.int_resource, cycles)
        return OpcodeInfo(mnemonic, tuple(uses), latency)

    def _arith_latency(self, kind: OpKind, dtype: ScalarType) -> tuple[int, int]:
        """(latency, unit-busy cycles) for an arithmetic kind."""
        lat = self.latencies
        if dtype.is_float:
            if kind in (OpKind.DIV, OpKind.SQRT):
                return lat.fp_div, lat.fp_div
            if kind is OpKind.MUL:
                return lat.fp_mul, 1
            return lat.fp_alu, 1
        if kind in (OpKind.DIV, OpKind.SQRT):
            return lat.int_div, lat.int_div
        if kind is OpKind.MUL:
            return lat.int_mul, 1
        return lat.int_alu, 1

    # ------------------------------------------------------------------
    # Communication cost model (paper Section 3.2: transfers are explicit
    # instructions that compete for resources).

    def transfer_opcodes(
        self, dtype: ScalarType, to_vector: bool
    ) -> list[tuple[OpKind, ScalarType, bool]]:
        """The (kind, dtype, is_vector) opcode sequence for one operand
        transfer.  Empty when communication is free."""
        if self.communication is CommunicationModel.FREE:
            return []
        if to_vector:
            # VL scalar stores, then one vector load.
            return [(OpKind.STORE, dtype, False)] * self.vector_length + [
                (OpKind.LOAD, dtype, True)
            ]
        # One vector store, then VL scalar loads.
        return [(OpKind.STORE, dtype, True)] + [
            (OpKind.LOAD, dtype, False)
        ] * self.vector_length
