"""Preset machine configurations.

``paper_machine`` is the Table 1 processor; ``figure1_machine`` is the
three-issue toy used by the motivating example.  The remaining factories
produce the variants used by the ablation benchmarks.
"""

from __future__ import annotations

from dataclasses import replace

from repro.machine.machine import (
    AlignmentPolicy,
    CommunicationModel,
    LatencyTable,
    MachineDescription,
    RegisterFiles,
)
from repro.machine.resources import ResourceClass


def paper_machine(
    vector_length: int = 2,
    alignment: AlignmentPolicy = AlignmentPolicy.ASSUME_MISALIGNED,
    communication: CommunicationModel = CommunicationModel.THROUGH_MEMORY,
) -> MachineDescription:
    """The Table 1 processor: 6-issue VLIW, 4 int / 2 fp / 2 ls / 1 br
    units, one shared int/fp vector unit, one vector merge unit, 2-wide
    64-bit vectors."""
    return MachineDescription(
        name="paper-vliw",
        resources=(
            ResourceClass("slot", 6),
            ResourceClass("int", 4),
            ResourceClass("fp", 2),
            ResourceClass("ls", 2),
            ResourceClass("br", 1),
            ResourceClass("vec", 1),
            ResourceClass("vmerge", 1),
        ),
        vector_length=vector_length,
        latencies=LatencyTable(),
        register_files=RegisterFiles(),
        communication=communication,
        alignment=alignment,
    )


def figure1_machine() -> MachineDescription:
    """The motivating-example machine: three issue slots as the only
    compiler-visible resources, at most one vector instruction per cycle
    (including vector memory operations), single-cycle latencies, and no
    explicit scalar<->vector communication."""
    return MachineDescription(
        name="figure1-toy",
        resources=(
            ResourceClass("slot", 3),
            ResourceClass("vec", 1),
        ),
        vector_length=2,
        latencies=LatencyTable(
            int_alu=1,
            int_mul=1,
            int_div=1,
            fp_alu=1,
            fp_mul=1,
            fp_div=1,
            load=1,
            store=1,
            branch=1,
            merge=1,
        ),
        communication=CommunicationModel.FREE,
        alignment=AlignmentPolicy.ASSUME_ALIGNED,
        vector_mem_uses_vector_unit=True,
        model_loop_overhead=False,
    )


def scalar_only_machine() -> MachineDescription:
    """The Table 1 processor with the vector extension removed; used to
    sanity-check that vectorization strategies degrade gracefully."""
    base = paper_machine()
    return replace(
        base,
        name="paper-vliw-scalar",
        resources=tuple(
            r for r in base.resources if r.name not in ("vec", "vmerge")
        ),
    )


def wide_vector_machine(vector_length: int = 4) -> MachineDescription:
    """Table 1 processor with a longer vector (ablation: as vector length
    grows, full vectorization becomes increasingly competitive)."""
    return replace(
        paper_machine(vector_length=vector_length),
        name=f"paper-vliw-vl{vector_length}",
    )


def dual_vector_unit_machine() -> MachineDescription:
    """Table 1 processor with two vector units (ablation)."""
    base = paper_machine()
    resources = tuple(
        ResourceClass("vec", 2) if r.name == "vec" else r for r in base.resources
    )
    return replace(base, name="paper-vliw-2vec", resources=resources)


def aligned_machine(vector_length: int = 2) -> MachineDescription:
    """Table 1 processor with perfect alignment information (Table 5)."""
    return replace(
        paper_machine(
            vector_length=vector_length,
            alignment=AlignmentPolicy.ASSUME_ALIGNED,
        ),
        name="paper-vliw-aligned",
    )


def free_communication_machine(vector_length: int = 2) -> MachineDescription:
    """Table 1 processor with a free scalar<->vector operand network
    (ablation: how much does through-memory communication cost?)."""
    return replace(
        paper_machine(
            vector_length=vector_length,
            communication=CommunicationModel.FREE,
        ),
        name="paper-vliw-freecomm",
    )


#: Machines addressable by name — the single registry the compiler CLI,
#: the sweep runner, and the compile-server protocol all resolve
#: against.  ``toy`` is the CLI's historical alias for the Figure 1
#: machine.
MACHINE_FACTORIES = {
    "paper": paper_machine,
    "figure1": figure1_machine,
    "toy": figure1_machine,
    "aligned": aligned_machine,
    "freecomm": free_communication_machine,
    "vl4": lambda: wide_vector_machine(4),
}


def machine_by_name(name: str) -> MachineDescription:
    """Resolve a registry name to a fresh machine description."""
    try:
        factory = MACHINE_FACTORIES[name]
    except KeyError:
        raise KeyError(
            f"unknown machine {name!r} "
            f"(expected one of {sorted(MACHINE_FACTORIES)})"
        ) from None
    return factory()
