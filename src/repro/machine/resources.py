"""Compiler-visible machine resources.

A resource class (e.g. "int" with count 4) stands for a set of identical
functional units; every member unit is a scheduling *alternative* in the
sense of the paper's ``ALTERNATIVES(r)``.  Issue slots are modeled as a
resource class like any other, so issue width constrains schedules through
the same mechanism as functional units.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class ResourceClass:
    """``count`` identical units named ``name``."""

    name: str
    count: int

    def __post_init__(self) -> None:
        if self.count < 1:
            raise ValueError(f"resource class {self.name!r} needs count >= 1")

    def instances(self) -> list[str]:
        # Memoized: instance names are asked for on every bin reservation
        # and every modulo-reservation-table scan.
        names = self.__dict__.get("_instances")
        if names is None:
            names = [f"{self.name}{i}" for i in range(self.count)]
            object.__setattr__(self, "_instances", names)
        return names

    def __getstate__(self) -> dict:
        state = dict(self.__dict__)
        state.pop("_instances", None)
        return state

    def __setstate__(self, state: dict) -> None:
        self.__dict__.update(state)


@dataclass(frozen=True)
class ResourceUse:
    """A requirement of one unit from ``resource`` for ``cycles`` cycles.

    ``cycles > 1`` models a non-pipelined unit (divides): the unit is busy
    and unavailable to other operations for that many consecutive cycles,
    which is exactly how the paper's bin weights account for multi-cycle
    reservations.
    """

    resource: str
    cycles: int = 1

    def __post_init__(self) -> None:
        if self.cycles < 1:
            raise ValueError("resource use must reserve >= 1 cycle")


@dataclass(frozen=True)
class OpcodeInfo:
    """Resource requirements and latency of one machine opcode."""

    mnemonic: str
    uses: tuple[ResourceUse, ...]
    latency: int

    def total_cycles(self) -> int:
        return sum(u.cycles for u in self.uses)
