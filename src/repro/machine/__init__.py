"""Parametric VLIW machine descriptions."""

from repro.machine.configs import (
    aligned_machine,
    dual_vector_unit_machine,
    figure1_machine,
    free_communication_machine,
    paper_machine,
    scalar_only_machine,
    wide_vector_machine,
)
from repro.machine.machine import (
    AlignmentPolicy,
    CommunicationModel,
    LatencyTable,
    MachineDescription,
    RegisterFiles,
)
from repro.machine.resources import OpcodeInfo, ResourceClass, ResourceUse

__all__ = [
    "AlignmentPolicy",
    "CommunicationModel",
    "LatencyTable",
    "MachineDescription",
    "OpcodeInfo",
    "RegisterFiles",
    "ResourceClass",
    "ResourceUse",
    "aligned_machine",
    "dual_vector_unit_machine",
    "figure1_machine",
    "free_communication_machine",
    "paper_machine",
    "scalar_only_machine",
    "wide_vector_machine",
]
