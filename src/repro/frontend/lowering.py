"""Lowering from DSL AST to loop IR.

Names obey sequential semantics: each scalar assignment rebinds the name
(internally a fresh single-assignment register), a ``carry`` name starts
each iteration at its loop-carried entry value, and whatever a carry name
is bound to at the end of the body is carried into the next iteration.
Subscripts must be affine in the loop index, declared ``sym`` names, and
integer constants.
"""

from __future__ import annotations

from repro.frontend.ast import (
    ArrayAssign,
    ArrayRefExpr,
    BinaryExpr,
    Expr,
    Location,
    NameExpr,
    NumberExpr,
    Program,
    ScalarAssign,
    UnaryExpr,
)
from repro.ir.builder import LoopBuilder
from repro.ir.loop import Loop
from repro.ir.subscripts import AffineExpr, Subscript
from repro.ir.types import ScalarType
from repro.ir.values import Constant, Operand, VirtualRegister


class LoweringError(Exception):
    """The program is syntactically valid but not lowerable."""

    def __init__(self, message: str, location: Location):
        super().__init__(f"{location}: {message}")
        self.location = location


_BINOPS = {"+": "add", "-": "sub", "*": "mul", "/": "div", "min": "minimum", "max": "maximum"}
_UNOPS = {"-": "neg", "abs": "absolute", "sqrt": "sqrt"}


class _Lowerer:
    def __init__(self, program: Program):
        self.program = program
        self.builder = LoopBuilder(program.name)
        self.env: dict[str, Operand] = {}
        self.carry_names: set[str] = set()
        self.sym_names = {s.name for s in program.syms}
        self.array_types: dict[str, ScalarType] = {}

    def lower(self) -> Loop:
        b = self.builder
        for decl in self.program.arrays:
            b.array(decl.name, decl.dtype, decl.dims, decl.align)
            self.array_types[decl.name] = decl.dtype
        for decl in self.program.params:
            self.env[decl.name] = b.carried(decl.name, decl.value, decl.dtype)
        for decl in self.program.carries:
            self.env[decl.name] = b.carried(decl.name, decl.init, decl.dtype)
            self.carry_names.add(decl.name)
        for sym in self.program.syms:
            if sym.default is not None:
                b.bind_symbol(sym.name, sym.default)

        for statement in self.program.body:
            if isinstance(statement, ScalarAssign):
                self._lower_scalar_assign(statement)
            else:
                self._lower_array_assign(statement)

        for name in self.carry_names:
            value = self.env[name]
            if isinstance(value, VirtualRegister) and value.name == name:
                continue  # never reassigned
            b.carry(name, value)

        for name in self.program.results:
            value = self.env.get(name)
            if value is None:
                raise LoweringError(
                    f"result {name!r} is never defined", Location(0, 0)
                )
            if isinstance(value, Constant):
                raise LoweringError(
                    f"result {name!r} is a constant", Location(0, 0)
                )
            b.live_out(value)
        return b.build()

    # ------------------------------------------------------------------

    def _lower_scalar_assign(self, stmt: ScalarAssign) -> None:
        if stmt.name in self.sym_names or stmt.name == self.program.index:
            raise LoweringError(
                f"cannot assign to {stmt.name!r}", stmt.location
            )
        value = self._lower_expr(stmt.value)
        if isinstance(value, Constant):
            self.env[stmt.name] = value
            return
        self.env[stmt.name] = value

    def _lower_array_assign(self, stmt: ArrayAssign) -> None:
        if stmt.array not in self.array_types:
            raise LoweringError(
                f"array {stmt.array!r} is not declared", stmt.location
            )
        dtype = self.array_types[stmt.array]
        subscript = self._lower_subscript(stmt.subscripts, stmt.location)
        value = self._coerce(self._lower_expr(stmt.value), dtype, stmt.location)
        if isinstance(value, Constant):
            value = Constant(
                float(value.value) if dtype.is_float else int(value.value), dtype
            )
        self.builder.store(stmt.array, subscript, value)

    # ------------------------------------------------------------------

    def _lower_expr(self, expr: Expr) -> Operand:
        if isinstance(expr, NumberExpr):
            if isinstance(expr.value, float):
                return Constant(expr.value, ScalarType.F64)
            return Constant(expr.value, ScalarType.I64)
        if isinstance(expr, NameExpr):
            if expr.name == self.program.index or expr.name in self.sym_names:
                raise LoweringError(
                    f"{expr.name!r} may only appear inside subscripts",
                    expr.location,
                )
            value = self.env.get(expr.name)
            if value is None:
                raise LoweringError(
                    f"name {expr.name!r} is not defined", expr.location
                )
            return value
        if isinstance(expr, ArrayRefExpr):
            if expr.array not in self.array_types:
                raise LoweringError(
                    f"array {expr.array!r} is not declared", expr.location
                )
            subscript = self._lower_subscript(expr.subscripts, expr.location)
            return self.builder.load(expr.array, subscript)
        if isinstance(expr, UnaryExpr):
            operand = self._lower_expr(expr.operand)
            if isinstance(operand, Constant) and expr.op == "-":
                return Constant(-operand.value, operand.type)
            method = getattr(self.builder, _UNOPS[expr.op])
            return method(operand)
        assert isinstance(expr, BinaryExpr)
        left = self._lower_expr(expr.left)
        right = self._lower_expr(expr.right)
        left, right = self._unify(left, right, expr.location)
        method = getattr(self.builder, _BINOPS[expr.op])
        return method(left, right)

    def _unify(
        self, left: Operand, right: Operand, location: Location
    ) -> tuple[Operand, Operand]:
        lt, rt = left.type, right.type
        if lt == rt:
            return left, right
        if isinstance(left, Constant):
            return self._coerce(left, rt, location), right  # type: ignore[arg-type]
        if isinstance(right, Constant):
            return left, self._coerce(right, lt, location)  # type: ignore[arg-type]
        raise LoweringError(
            f"mixed operand types {lt} and {rt}; use explicit arrays/params "
            "of one type",
            location,
        )

    def _coerce(
        self, value: Operand, dtype: ScalarType, location: Location
    ) -> Operand:
        if value.type == dtype:
            return value
        if isinstance(value, Constant):
            if dtype.is_float:
                return Constant(float(value.value), dtype)
            if isinstance(value.value, int) or float(value.value).is_integer():
                return Constant(int(value.value), dtype)
        raise LoweringError(
            f"cannot convert {value} to {dtype} implicitly", location
        )

    # ------------------------------------------------------------------

    def _lower_subscript(
        self, exprs: tuple[Expr, ...], location: Location
    ) -> Subscript:
        return Subscript(tuple(self._linearize(e) for e in exprs))

    def _linearize(self, expr: Expr) -> AffineExpr:
        coeff, offset, syms = self._linear_parts(expr)
        return AffineExpr(coeff, offset, tuple(syms.items()))

    def _linear_parts(self, expr: Expr) -> tuple[int, int, dict[str, int]]:
        if isinstance(expr, NumberExpr):
            if not isinstance(expr.value, int):
                raise LoweringError(
                    "subscripts must be integers", expr.location
                )
            return 0, expr.value, {}
        if isinstance(expr, NameExpr):
            if expr.name == self.program.index:
                return 1, 0, {}
            if expr.name in self.sym_names:
                return 0, 0, {expr.name: 1}
            raise LoweringError(
                f"{expr.name!r} is not the loop index or a declared sym",
                expr.location,
            )
        if isinstance(expr, UnaryExpr) and expr.op == "-":
            c, o, s = self._linear_parts(expr.operand)
            return -c, -o, {k: -v for k, v in s.items()}
        if isinstance(expr, BinaryExpr) and expr.op in ("+", "-"):
            lc, lo, ls = self._linear_parts(expr.left)
            rc, ro, rs = self._linear_parts(expr.right)
            sign = 1 if expr.op == "+" else -1
            merged = dict(ls)
            for k, v in rs.items():
                merged[k] = merged.get(k, 0) + sign * v
            return lc + sign * rc, lo + sign * ro, merged
        if isinstance(expr, BinaryExpr) and expr.op == "*":
            lc, lo, ls = self._linear_parts(expr.left)
            rc, ro, rs = self._linear_parts(expr.right)
            if lc == 0 and not ls:
                scale, linear = lo, (rc, ro, rs)
            elif rc == 0 and not rs:
                scale, linear = ro, (lc, lo, ls)
            else:
                raise LoweringError(
                    "subscripts must be affine in the loop index", expr.location
                )
            c, o, s = linear
            return c * scale, o * scale, {k: v * scale for k, v in s.items()}
        raise LoweringError(
            "subscripts must be affine in the loop index", expr.location
        )


def lower_program(program: Program) -> Loop:
    return _Lowerer(program).lower()
