"""Recursive-descent parser for the loop DSL."""

from __future__ import annotations

from repro.frontend.ast import (
    ArrayAssign,
    ArrayDecl,
    ArrayRefExpr,
    BinaryExpr,
    CarryDecl,
    Expr,
    NameExpr,
    NumberExpr,
    ParamDecl,
    Program,
    ScalarAssign,
    SymDecl,
    UnaryExpr,
)
from repro.frontend.lexer import (
    SyntaxErrorDSL,
    Token,
    TokenKind,
    tokenize,
)
from repro.ir.types import ScalarType

_FUNCTIONS1 = ("abs", "sqrt")
_FUNCTIONS2 = ("min", "max")


class Parser:
    def __init__(self, source: str):
        self.tokens = tokenize(source)
        self.pos = 0

    # ------------------------------------------------------------------

    @property
    def current(self) -> Token:
        return self.tokens[self.pos]

    def advance(self) -> Token:
        token = self.current
        if token.kind is not TokenKind.EOF:
            self.pos += 1
        return token

    def check(self, kind: TokenKind, text: str | None = None) -> bool:
        tok = self.current
        return tok.kind is kind and (text is None or tok.text == text)

    def accept(self, kind: TokenKind, text: str | None = None) -> Token | None:
        if self.check(kind, text):
            return self.advance()
        return None

    def expect(self, kind: TokenKind, text: str | None = None) -> Token:
        if not self.check(kind, text):
            want = text or kind.value
            raise SyntaxErrorDSL(
                f"expected {want!r}, found {self.current.text!r}",
                self.current.location,
            )
        return self.advance()

    def skip_newlines(self) -> None:
        while self.accept(TokenKind.NEWLINE):
            pass

    # ------------------------------------------------------------------

    def parse_program(self) -> Program:
        program = Program()
        self.skip_newlines()
        while not self.check(TokenKind.EOF):
            tok = self.current
            if tok.kind is TokenKind.NAME and tok.text == "loop":
                self.advance()
                program.name = self.expect(TokenKind.NAME).text
            elif tok.kind is TokenKind.NAME and tok.text == "array":
                self.advance()
                self._parse_array_decls(program)
            elif tok.kind is TokenKind.NAME and tok.text == "param":
                self.advance()
                program.params.append(self._parse_param())
            elif tok.kind is TokenKind.NAME and tok.text == "carry":
                self.advance()
                program.carries.append(self._parse_carry())
            elif tok.kind is TokenKind.NAME and tok.text == "sym":
                self.advance()
                name = self.expect(TokenKind.NAME)
                default = None
                if self.accept(TokenKind.PUNCT, "="):
                    default = self._parse_int()
                program.syms.append(
                    SymDecl(name.text, name.location, default)
                )
            elif tok.kind is TokenKind.NAME and tok.text == "do":
                self.advance()
                program.index = self.expect(TokenKind.NAME).text
                self.expect(TokenKind.NEWLINE)
                program.body = self._parse_body(program.index)
            elif tok.kind is TokenKind.NAME and tok.text == "result":
                self.advance()
                program.results.append(self.expect(TokenKind.NAME).text)
                while self.accept(TokenKind.PUNCT, ","):
                    program.results.append(self.expect(TokenKind.NAME).text)
            else:
                raise SyntaxErrorDSL(
                    f"unexpected token {tok.text!r}", tok.location
                )
            self.skip_newlines()
        return program

    def _parse_dtype(self) -> ScalarType:
        if self.accept(TokenKind.PUNCT, ":"):
            tok = self.expect(TokenKind.NAME)
            if tok.text == "f64":
                return ScalarType.F64
            if tok.text == "i64":
                return ScalarType.I64
            raise SyntaxErrorDSL(f"unknown type {tok.text!r}", tok.location)
        return ScalarType.F64

    def _parse_array_decls(self, program: Program) -> None:
        while True:
            name = self.expect(TokenKind.NAME)
            self.expect(TokenKind.PUNCT, "(")
            dims = [self._parse_int()]
            while self.accept(TokenKind.PUNCT, ","):
                dims.append(self._parse_int())
            self.expect(TokenKind.PUNCT, ")")
            align = 0
            if self.check(TokenKind.NAME, "align"):
                self.advance()
                align = self._parse_int()
            dtype = self._parse_dtype()
            program.arrays.append(
                ArrayDecl(name.text, tuple(dims), dtype, align, name.location)
            )
            if not self.accept(TokenKind.PUNCT, ","):
                break

    def _parse_int(self) -> int:
        tok = self.expect(TokenKind.NUMBER)
        try:
            return int(tok.text)
        except ValueError as exc:
            raise SyntaxErrorDSL(
                f"expected an integer, found {tok.text!r}", tok.location
            ) from exc

    def _parse_number(self) -> int | float:
        negative = self.accept(TokenKind.PUNCT, "-") is not None
        tok = self.expect(TokenKind.NUMBER)
        value: int | float
        if any(c in tok.text for c in ".eE"):
            value = float(tok.text)
        else:
            value = int(tok.text)
        return -value if negative else value

    def _parse_param(self) -> ParamDecl:
        name = self.expect(TokenKind.NAME)
        self.expect(TokenKind.PUNCT, "=")
        value = self._parse_number()
        dtype = self._parse_dtype()
        if dtype.is_float:
            value = float(value)
        return ParamDecl(name.text, value, dtype, name.location)

    def _parse_carry(self) -> CarryDecl:
        name = self.expect(TokenKind.NAME)
        self.expect(TokenKind.PUNCT, "=")
        value = self._parse_number()
        dtype = self._parse_dtype()
        if dtype.is_float:
            value = float(value)
        return CarryDecl(name.text, value, dtype, name.location)

    # ------------------------------------------------------------------

    def _parse_body(self, index: str):
        body = []
        self.skip_newlines()
        while not self.check(TokenKind.NAME, "end"):
            if self.check(TokenKind.EOF):
                raise SyntaxErrorDSL(
                    "missing 'end' for loop body", self.current.location
                )
            body.append(self._parse_statement())
            self.expect(TokenKind.NEWLINE)
            self.skip_newlines()
        self.expect(TokenKind.NAME, "end")
        return body

    def _parse_statement(self):
        name = self.expect(TokenKind.NAME)
        if self.accept(TokenKind.PUNCT, "("):
            subscripts = [self._parse_expr()]
            while self.accept(TokenKind.PUNCT, ","):
                subscripts.append(self._parse_expr())
            self.expect(TokenKind.PUNCT, ")")
            self.expect(TokenKind.PUNCT, "=")
            value = self._parse_expr()
            return ArrayAssign(
                name.text, tuple(subscripts), value, name.location
            )
        self.expect(TokenKind.PUNCT, "=")
        return ScalarAssign(name.text, self._parse_expr(), name.location)

    # Expression grammar: term (+|- term)*; term: factor (*|/ factor)*;
    # factor: number | name | name(...) | func(...) | -factor | (expr)
    def _parse_expr(self) -> Expr:
        left = self._parse_term()
        while self.check(TokenKind.PUNCT, "+") or self.check(TokenKind.PUNCT, "-"):
            op = self.advance()
            right = self._parse_term()
            left = BinaryExpr(op.location, op.text, left, right)
        return left

    def _parse_term(self) -> Expr:
        left = self._parse_factor()
        while self.check(TokenKind.PUNCT, "*") or self.check(TokenKind.PUNCT, "/"):
            op = self.advance()
            right = self._parse_factor()
            left = BinaryExpr(op.location, op.text, left, right)
        return left

    def _parse_factor(self) -> Expr:
        tok = self.current
        if self.accept(TokenKind.PUNCT, "-"):
            return UnaryExpr(tok.location, "-", self._parse_factor())
        if self.accept(TokenKind.PUNCT, "("):
            expr = self._parse_expr()
            self.expect(TokenKind.PUNCT, ")")
            return expr
        if tok.kind is TokenKind.NUMBER:
            self.advance()
            if any(c in tok.text for c in ".eE"):
                return NumberExpr(tok.location, float(tok.text))
            return NumberExpr(tok.location, int(tok.text))
        if tok.kind is TokenKind.NAME:
            self.advance()
            if tok.text in _FUNCTIONS1 and self.accept(TokenKind.PUNCT, "("):
                arg = self._parse_expr()
                self.expect(TokenKind.PUNCT, ")")
                return UnaryExpr(tok.location, tok.text, arg)
            if tok.text in _FUNCTIONS2 and self.accept(TokenKind.PUNCT, "("):
                a = self._parse_expr()
                self.expect(TokenKind.PUNCT, ",")
                bexpr = self._parse_expr()
                self.expect(TokenKind.PUNCT, ")")
                return BinaryExpr(tok.location, tok.text, a, bexpr)
            if self.accept(TokenKind.PUNCT, "("):
                subscripts = [self._parse_expr()]
                while self.accept(TokenKind.PUNCT, ","):
                    subscripts.append(self._parse_expr())
                self.expect(TokenKind.PUNCT, ")")
                return ArrayRefExpr(tok.location, tok.text, tuple(subscripts))
            return NameExpr(tok.location, tok.text)
        raise SyntaxErrorDSL(
            f"unexpected token {tok.text!r} in expression", tok.location
        )


def parse_program(source: str) -> Program:
    return Parser(source).parse_program()
