"""The loop DSL frontend: parse textual loop programs into loop IR."""

from repro.frontend.ast import Program
from repro.frontend.lexer import SyntaxErrorDSL, tokenize
from repro.frontend.lowering import LoweringError, lower_program
from repro.frontend.parser import parse_program
from repro.ir.loop import Loop


def parse_loop(source: str) -> Loop:
    """Parse DSL source straight to verified loop IR."""
    return lower_program(parse_program(source))


__all__ = [
    "Loop",
    "LoweringError",
    "Program",
    "SyntaxErrorDSL",
    "lower_program",
    "parse_loop",
    "parse_program",
    "tokenize",
]
