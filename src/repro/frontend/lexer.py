"""Tokenizer for the loop DSL."""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.frontend.ast import Location


class SyntaxErrorDSL(Exception):
    """A lexical or syntactic error in DSL source."""

    def __init__(self, message: str, location: Location):
        super().__init__(f"{location}: {message}")
        self.location = location


class TokenKind(enum.Enum):
    NAME = "name"
    NUMBER = "number"
    PUNCT = "punct"
    NEWLINE = "newline"
    EOF = "eof"


KEYWORDS = frozenset(
    {"array", "param", "carry", "sym", "do", "end", "result", "loop"}
)
PUNCTUATION = ("(", ")", ",", "+", "-", "*", "/", "=", ":")


@dataclass(frozen=True)
class Token:
    kind: TokenKind
    text: str
    location: Location

    @property
    def is_keyword(self) -> bool:
        return self.kind is TokenKind.NAME and self.text in KEYWORDS


def tokenize(source: str) -> list[Token]:
    tokens: list[Token] = []
    for line_no, raw_line in enumerate(source.splitlines(), start=1):
        line = raw_line.split("#", 1)[0]
        col = 0
        length = len(line)
        emitted_on_line = False
        while col < length:
            ch = line[col]
            loc = Location(line_no, col + 1)
            if ch.isspace():
                col += 1
                continue
            if ch.isalpha() or ch == "_":
                start = col
                while col < length and (line[col].isalnum() or line[col] in "_."):
                    col += 1
                tokens.append(Token(TokenKind.NAME, line[start:col], loc))
            elif ch.isdigit() or (
                ch == "." and col + 1 < length and line[col + 1].isdigit()
            ):
                start = col
                seen_dot = False
                seen_exp = False
                while col < length:
                    c = line[col]
                    if c.isdigit():
                        col += 1
                    elif c == "." and not seen_dot and not seen_exp:
                        seen_dot = True
                        col += 1
                    elif c in "eE" and not seen_exp and col > start:
                        seen_exp = True
                        col += 1
                        if col < length and line[col] in "+-":
                            col += 1
                    else:
                        break
                tokens.append(Token(TokenKind.NUMBER, line[start:col], loc))
            elif ch in PUNCTUATION:
                tokens.append(Token(TokenKind.PUNCT, ch, loc))
                col += 1
            else:
                raise SyntaxErrorDSL(f"unexpected character {ch!r}", loc)
            emitted_on_line = True
        if emitted_on_line:
            tokens.append(
                Token(TokenKind.NEWLINE, "\n", Location(line_no, length + 1))
            )
    last = Location(source.count("\n") + 2, 1)
    tokens.append(Token(TokenKind.EOF, "", last))
    return tokens
