"""Abstract syntax for the loop DSL.

The language describes exactly what the backend consumes: one innermost
counted loop over declared arrays, with loop-invariant parameters,
loop-carried scalars, and affine subscripts.  A program looks like::

    array x(1026), y(1026)
    array flags(1024) : i64
    param a = 2.5
    carry s = 0.0
    sym j

    do i
        t = x(i) * y(i+1)
        y(i) = t + a
        s = s + abs(t)
    end

    result s
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.ir.types import ScalarType


@dataclass(frozen=True)
class Location:
    line: int
    column: int

    def __str__(self) -> str:
        return f"{self.line}:{self.column}"


# ----------------------------------------------------------------------
# Expressions


@dataclass(frozen=True)
class Expr:
    location: Location


@dataclass(frozen=True)
class NumberExpr(Expr):
    value: int | float


@dataclass(frozen=True)
class NameExpr(Expr):
    name: str


@dataclass(frozen=True)
class ArrayRefExpr(Expr):
    array: str
    subscripts: tuple[Expr, ...]


@dataclass(frozen=True)
class UnaryExpr(Expr):
    op: str  # "-", "abs", "sqrt"
    operand: Expr


@dataclass(frozen=True)
class BinaryExpr(Expr):
    op: str  # "+", "-", "*", "/", "min", "max"
    left: Expr
    right: Expr


# ----------------------------------------------------------------------
# Statements and declarations


@dataclass(frozen=True)
class ArrayDecl:
    name: str
    dims: tuple[int, ...]
    dtype: ScalarType
    align: int
    location: Location


@dataclass(frozen=True)
class ParamDecl:
    name: str
    value: int | float
    dtype: ScalarType
    location: Location


@dataclass(frozen=True)
class CarryDecl:
    name: str
    init: int | float
    dtype: ScalarType
    location: Location


@dataclass(frozen=True)
class SymDecl:
    name: str
    location: Location
    default: int | None = None


@dataclass(frozen=True)
class ScalarAssign:
    name: str
    value: Expr
    location: Location


@dataclass(frozen=True)
class ArrayAssign:
    array: str
    subscripts: tuple[Expr, ...]
    value: Expr
    location: Location


Statement = ScalarAssign | ArrayAssign


@dataclass
class Program:
    arrays: list[ArrayDecl] = field(default_factory=list)
    params: list[ParamDecl] = field(default_factory=list)
    carries: list[CarryDecl] = field(default_factory=list)
    syms: list[SymDecl] = field(default_factory=list)
    index: str = "i"
    body: list[Statement] = field(default_factory=list)
    results: list[str] = field(default_factory=list)
    name: str = "loop"
