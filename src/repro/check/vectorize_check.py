"""Independent validation of the vectorizing transformation.

The checker starts from the *original* loop the transform consumed
(``TransformResult.source``), re-runs dependence analysis on it, and
reconstructs the scalar/vector partition from the emitted operations'
``origin`` tags — it never looks at the partitioner's assignment.  It
then verifies partition legality (no vectorized operation sits on an
unbroken dependence cycle at the vector length, every vectorized kind
and access shape is vectorizable), that every original operation is
realized (a vector op, or one scalar replica per lane), that every
scalar↔vector crossing edge implied by the reconstructed partition has
a matching materialized transfer (scratch-array pack/unpack sequences
or PACK/EXTRACT ops, per the machine's communication model), and that
an alignment merge appears wherever the alignment analysis declares a
vectorized memory reference misaligned.

Rules: V-SOURCE, V-KIND, V-CYCLE, V-COVER, V-TRANSFER, V-ALIGN.
"""

from __future__ import annotations

from repro.check.findings import CheckFinding, Severity
from repro.dependence.analysis import analyze_loop, build_dependence_graph
from repro.dependence.graph import DependenceGraph
from repro.ir.loop import Loop
from repro.ir.operations import OpKind, Operation
from repro.machine.machine import CommunicationModel, MachineDescription
from repro.vectorize.alignment import reference_is_misaligned
from repro.vectorize.communication import Side, Transfer, dataflow_of, transfers_for
from repro.vectorize.transform import SCRATCH_PREFIX, TransformResult

STAGE = "vectorize"

# The checker's own notion of vectorizable operation kinds (kept
# independent of repro.dependence.analysis._VECTORIZABLE_KINDS).
_CHECK_VECTORIZABLE = frozenset(
    {
        OpKind.ADD,
        OpKind.SUB,
        OpKind.MUL,
        OpKind.DIV,
        OpKind.NEG,
        OpKind.ABS,
        OpKind.MIN,
        OpKind.MAX,
        OpKind.SQRT,
        OpKind.COPY,
        OpKind.CVT,
        OpKind.LOAD,
        OpKind.STORE,
    }
)


def check_vectorize(
    transform: TransformResult, machine: MachineDescription
) -> list[CheckFinding]:
    """Re-derive the transform's obligations from its source loop."""
    emitted = transform.loop
    source = transform.source
    if source is None:
        return [
            CheckFinding(
                STAGE, "V-SOURCE", Severity.INFO, emitted.name, (),
                "transform records no source loop; vectorize-stage "
                "obligations cannot be re-derived (schedule and kernel "
                "checks still apply)",
            )
        ]
    findings: list[CheckFinding] = []

    def finding(rule: str, severity: Severity, uids: tuple[int, ...], msg: str) -> None:
        findings.append(CheckFinding(STAGE, rule, severity, emitted.name, uids, msg))

    factor = transform.factor
    orig = {op.uid: op for op in source.body}

    # Reconstruct the partition from origin tags: an original operation
    # was vectorized iff an emitted vector op of the same kind carries
    # its uid (misaligned references also emit MERGE ops under the same
    # origin; the kind match skips those).
    vector_uids = {
        e.origin
        for e in emitted.body
        if e.is_vector and e.origin in orig and e.kind == orig[e.origin].kind
    }

    # V-COVER: every original operation is realized in the emitted loop.
    for uid, op in sorted(orig.items()):
        if uid in vector_uids:
            continue
        lanes = {
            e.lane
            for e in emitted.body
            if e.origin == uid and not e.is_vector and e.lane is not None
        }
        if lanes != set(range(factor)):
            missing = sorted(set(range(factor)) - lanes)
            finding(
                "V-COVER", Severity.ERROR, (uid,),
                f"scalar operation must be replicated for lanes "
                f"0..{factor - 1}, missing lanes {missing}",
            )

    # V-KIND: vectorized operations are vectorizable by kind and shape.
    for uid in sorted(vector_uids):
        op = orig[uid]
        if op.kind not in _CHECK_VECTORIZABLE:
            finding(
                "V-KIND", Severity.ERROR, (uid,),
                f"operation kind {op.kind.value} is not vectorizable",
            )
        if op.kind.is_memory:
            assert op.subscript is not None
            if not op.subscript.is_unit_stride:
                finding(
                    "V-KIND", Severity.ERROR, (uid,),
                    f"vectorized memory reference {op.array}{op.subscript} "
                    f"is not unit-stride",
                )

    # V-CYCLE: no vectorized op on an unbroken dependence cycle at the
    # vector length — re-derived with the checker's own reachability
    # walk over a freshly built graph.
    graph = build_dependence_graph(source)
    reported_sccs: set[frozenset[int]] = set()
    for uid in sorted(vector_uids):
        forward = _reachable(graph, uid, forward=True)
        if uid not in forward:
            continue  # not on any cycle
        members = frozenset(
            {uid} | (forward & _reachable(graph, uid, forward=False))
        )
        if members in reported_sccs:
            continue
        reported_sccs.add(members)
        for member in members:
            for edge in graph.successors(member):
                if edge.dst not in members:
                    continue
                if not edge.exact or 1 <= edge.distance < factor:
                    finding(
                        "V-CYCLE", Severity.ERROR, (edge.src, edge.dst),
                        f"vectorized operation {uid} sits on a dependence "
                        f"cycle unbroken at vector length {factor}: "
                        f"{edge}",
                    )

    # V-TRANSFER: every crossing edge implied by the reconstructed
    # partition has a materialized transfer.
    dep = analyze_loop(source, machine.vector_length)
    assignment = {
        uid: (Side.VECTOR if uid in vector_uids else Side.SCALAR) for uid in orig
    }
    for transfer in transfers_for(dataflow_of(dep), assignment):
        problem = _transfer_missing(emitted, machine, orig, transfer, factor)
        if problem is not None:
            uids = (transfer.key,) if isinstance(transfer.key, int) else ()
            finding(
                "V-TRANSFER", Severity.ERROR, uids,
                f"{transfer} required by the partition but {problem}",
            )

    # V-ALIGN: declared-misaligned vectorized memory references carry a
    # realignment merge.
    for uid in sorted(vector_uids):
        op = orig[uid]
        if not op.kind.is_memory:
            continue
        if not machine.needs_alignment_merges:
            continue
        if not reference_is_misaligned(machine, source, op):
            continue
        merges = [
            e
            for e in emitted.body
            if e.kind is OpKind.MERGE and e.origin == uid and e.is_vector
        ]
        if not merges:
            finding(
                "V-ALIGN", Severity.ERROR, (uid,),
                f"alignment analysis declares {op.array}{op.subscript} "
                f"misaligned but no realignment MERGE was emitted",
            )
    return findings


def _reachable(graph: DependenceGraph, start: int, *, forward: bool) -> set[int]:
    """Nodes reachable from ``start`` along >= 1 edge (``start`` itself
    is included only if it lies on a cycle)."""
    seen: set[int] = set()
    frontier = [
        (e.dst if forward else e.src)
        for e in (graph.successors(start) if forward else graph.predecessors(start))
    ]
    while frontier:
        node = frontier.pop()
        if node in seen:
            continue
        seen.add(node)
        edges = graph.successors(node) if forward else graph.predecessors(node)
        frontier.extend(e.dst if forward else e.src for e in edges)
    return seen


def _transfer_missing(
    emitted: Loop,
    machine: MachineDescription,
    orig: dict[int, Operation],
    transfer: Transfer,
    factor: int,
) -> str | None:
    """None when the transfer is materialized in the emitted body, else
    a description of what is missing."""
    if isinstance(transfer.key, int):
        producer = orig[transfer.key]
        assert producer.dest is not None
        name = producer.dest.name
    else:
        name = transfer.key[1]

    body = emitted.body
    if machine.communication is CommunicationModel.FREE:
        if transfer.to_vector:
            packs = [
                e
                for e in body
                if e.kind is OpKind.PACK
                and e.dest is not None
                and e.dest.name == f"{name}.pk"
            ]
            if not packs:
                return f"no PACK producing {name}.pk found"
            return None
        extracts = [
            e
            for e in body
            if e.kind is OpKind.EXTRACT
            and e.dest is not None
            and e.dest.name.startswith(f"{name}.up")
        ]
        if len(extracts) < factor:
            return (
                f"only {len(extracts)} EXTRACT(s) of {name} found, "
                f"need {factor}"
            )
        return None

    array = f"{SCRATCH_PREFIX}{name}"
    stores = [e for e in body if e.kind is OpKind.STORE and e.array == array]
    loads = [e for e in body if e.kind is OpKind.LOAD and e.array == array]
    if transfer.to_vector:
        scalar_stores = [e for e in stores if not e.is_vector]
        vector_loads = [e for e in loads if e.is_vector]
        if len(scalar_stores) < factor:
            return (
                f"only {len(scalar_stores)} scalar store(s) to {array} "
                f"found, need {factor}"
            )
        if not vector_loads:
            return f"no vector load from {array} found"
        return None
    vector_stores = [e for e in stores if e.is_vector]
    scalar_loads = [e for e in loads if not e.is_vector]
    if not vector_stores:
        return f"no vector store to {array} found"
    if len(scalar_loads) < factor:
        return (
            f"only {len(scalar_loads)} scalar load(s) from {array} "
            f"found, need {factor}"
        )
    return None
