"""Independent validation of a modulo schedule.

The checker rebuilds the dependence graph from the scheduled loop's IR,
applies its own delay rule, and verifies every edge against the modulo
constraint ``σ(cons) + II·distance ≥ σ(prod) + delay``.  Resource
legality is re-derived from the machine model: each operation's
reservations are re-expanded into modulo rows (multi-cycle reservations
wrap around the kernel), aggregate occupancy is checked against class
capacity per row, and — when any reservation spans more than one cycle —
a backtracking binder proves the demands can actually be assigned to
concrete resource instances.  Nothing from the scheduler's own
bookkeeping (its ``ModuloReservationTable``, its internal re-check) is
reused.

Rules: S-COMPLETE, S-DEP, S-RES-CAP, S-RES-BIND.
"""

from __future__ import annotations

from collections import defaultdict

from repro.check.findings import CheckFinding, Severity
from repro.dependence.analysis import build_dependence_graph
from repro.dependence.graph import DepEdge, DependenceGraph, DepKind
from repro.pipeline.scheduler import ModuloSchedule

STAGE = "schedule"


def _edge_delay(
    schedule: ModuloSchedule, graph: DependenceGraph, edge: DepEdge
) -> int:
    """The checker's own delay rule: a flow consumer waits for the
    producer's full latency; an anti dependence permits same-cycle
    issue on a statically scheduled machine; output and control
    dependences require strict ordering (one cycle)."""
    if edge.kind is DepKind.FLOW:
        return schedule.machine.opcode_info(graph.ops[edge.src]).latency
    if edge.kind is DepKind.ANTI:
        return 0
    return 1


def check_schedule(schedule: ModuloSchedule) -> list[CheckFinding]:
    """Re-derive every scheduling obligation and verify it holds."""
    loop = schedule.loop
    machine = schedule.machine
    ii = schedule.ii
    times = schedule.times
    findings: list[CheckFinding] = []

    def finding(rule: str, severity: Severity, uids: tuple[int, ...], msg: str) -> None:
        findings.append(CheckFinding(STAGE, rule, severity, loop.name, uids, msg))

    # S-COMPLETE: the schedule covers the body exactly, at sane cycles.
    body_uids = {op.uid for op in loop.body}
    for uid in sorted(body_uids - set(times)):
        finding(
            "S-COMPLETE", Severity.ERROR, (uid,),
            "body operation has no scheduled cycle",
        )
    for uid in sorted(set(times) - body_uids):
        finding(
            "S-COMPLETE", Severity.ERROR, (uid,),
            "schedule assigns a cycle to an operation not in the body",
        )
    for uid, t in sorted(times.items()):
        if t < 0:
            finding(
                "S-COMPLETE", Severity.ERROR, (uid,),
                f"operation scheduled at negative cycle {t}",
            )
    if ii < 1:
        finding("S-COMPLETE", Severity.ERROR, (), f"II must be >= 1, got {ii}")
        return findings

    # S-DEP: every dependence edge of a freshly rebuilt graph honors the
    # modulo constraint under the checker's own delay rule.
    graph = build_dependence_graph(loop)
    for edge in graph.edges:
        if edge.src not in times or edge.dst not in times:
            continue  # S-COMPLETE already reported the hole
        delay = _edge_delay(schedule, graph, edge)
        slack = times[edge.dst] + ii * edge.distance - times[edge.src] - delay
        if slack < 0:
            finding(
                "S-DEP", Severity.ERROR, (edge.src, edge.dst),
                f"dependence violated: {edge} needs "
                f"σ({edge.dst}) + {ii}·{edge.distance} ≥ "
                f"σ({edge.src}) + {delay}, have "
                f"{times[edge.dst]} + {ii * edge.distance} vs "
                f"{times[edge.src]} + {delay}",
            )

    # Re-expand every reservation into kernel rows, from the machine
    # model alone.  demands[class] = [(uid, {rows})].
    demands: dict[str, list[tuple[int, frozenset[int]]]] = defaultdict(list)
    multi_cycle: set[str] = set()
    for op in loop.body:
        if op.uid not in times:
            continue
        for use in machine.opcode_info(op).uses:
            if use.cycles > ii:
                finding(
                    "S-RES-CAP", Severity.ERROR, (op.uid,),
                    f"reservation of {use.resource} for {use.cycles} cycles "
                    f"cannot fit in a kernel of II {ii}",
                )
                continue
            rows = frozenset((times[op.uid] + k) % ii for k in range(use.cycles))
            demands[use.resource].append((op.uid, rows))
            if use.cycles > 1:
                multi_cycle.add(use.resource)

    # S-RES-CAP: aggregate occupancy per (class, row) within capacity.
    for resource, uses in sorted(demands.items()):
        count = machine.resource_class(resource).count
        per_row: dict[int, list[int]] = defaultdict(list)
        for uid, rows in uses:
            for row in rows:
                per_row[row].append(uid)
        overfull = False
        for row, holders in sorted(per_row.items()):
            if len(holders) > count:
                overfull = True
                finding(
                    "S-RES-CAP", Severity.ERROR, tuple(sorted(holders)),
                    f"kernel row {row} reserves {resource} "
                    f"{len(holders)} times but the machine has {count}",
                )
        # S-RES-BIND: with multi-cycle reservations, row-wise capacity is
        # necessary but not sufficient — prove an instance assignment
        # exists (each instance's rows pairwise disjoint).
        if not overfull and resource in multi_cycle:
            if not _bindable([rows for _, rows in uses], count):
                finding(
                    "S-RES-BIND", Severity.ERROR,
                    tuple(sorted(uid for uid, _ in uses)),
                    f"reservations of {resource} fit per-row capacity but "
                    f"cannot be bound to {count} concrete instance(s) "
                    f"without overlap",
                )
    return findings


def _bindable(demand_rows: list[frozenset[int]], count: int) -> bool:
    """Can the demands be partitioned into ``count`` groups whose row
    sets are pairwise disjoint within each group?  Backtracking with a
    symmetry prune (identical instance states are tried once)."""
    ordered = sorted(demand_rows, key=len, reverse=True)
    instances: list[set[int]] = [set() for _ in range(count)]

    def place(i: int) -> bool:
        if i == len(ordered):
            return True
        tried: set[frozenset[int]] = set()
        for inst in instances:
            if inst & ordered[i]:
                continue
            signature = frozenset(inst)
            if signature in tried:
                continue
            tried.add(signature)
            inst |= ordered[i]
            if place(i + 1):
                return True
            inst -= ordered[i]
        return False

    return place(0)
