"""Translation validation: independent static checkers per compiler stage.

Each checker re-derives the obligations of one pipeline stage from the
primary sources (the loop IR, the dependence tests, the machine model)
and verifies the stage's artifact discharges them — it never trusts the
stage's own bookkeeping.  ``run_all_checks`` drives every checker over a
:class:`~repro.compiler.driver.CompiledLoop` and returns a
:class:`CheckReport`; findings flow through the observability recorder
as ``check`` remarks.  See ``docs/checking.md`` for the rule catalog.
"""

from repro.check.findings import (
    CheckFinding,
    CheckReport,
    Severity,
    TranslationValidationError,
)
from repro.check.runner import run_all_checks

__all__ = [
    "CheckFinding",
    "CheckReport",
    "Severity",
    "TranslationValidationError",
    "run_all_checks",
]
