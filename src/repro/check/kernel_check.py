"""Independent validation of MVE, register allocation, and kernel codegen.

The checker re-derives value lifetimes from the schedule and a freshly
rebuilt dependence graph, then counts simultaneously live copies per
kernel row by direct enumeration (how many absolute cycles of the
lifetime land on this row) rather than the allocator's ceiling
arithmetic.  It verifies the reported MaxLive matches, that no file
overflows its capacity (two live values would have to share a physical
register), that every expanded name's lifetime fits in II·copies, that
rotating indices are unique per file, that spill code keeps each reload
reachable from its store, and that kernel-only code places every
operation in its stage and row with rotation offsets that resolve each
operand to the defining iteration's value.

Rules: K-ALLOC, K-PRESSURE, K-MVE, K-ROTIDX, K-SPILL, K-KERNELONLY.
"""

from __future__ import annotations

from repro.check.findings import CheckFinding, Severity
from repro.dependence.analysis import build_dependence_graph
from repro.dependence.graph import DependenceGraph, DepKind, Via
from repro.ir.loop import Loop
from repro.ir.operations import OpKind, Operation
from repro.ir.values import Constant, VirtualRegister
from repro.pipeline.codegen import RotatingRef, generate_kernel_only_code
from repro.pipeline.mve import modulo_variable_expansion
from repro.pipeline.scheduler import ModuloSchedule
from repro.regalloc.allocator import (
    _CAPACITY_ATTR,
    AllocationResult,
    register_file_of,
)
from repro.regalloc.spill import SPILL_PREFIX

STAGE = "kernel"


def _derive_lifetimes(
    schedule: ModuloSchedule, graph: DependenceGraph
) -> dict[VirtualRegister, tuple[int, int]]:
    """Re-derive [def, last-use) for every defined value: issue cycle to
    the latest register/carried flow consumer read (offset by II per
    distance), at least the producer's own latency."""
    loop = schedule.loop
    machine = schedule.machine
    ii = schedule.ii
    lifetimes: dict[VirtualRegister, tuple[int, int]] = {}
    for op in loop.body:
        if op.dest is None or op.uid not in schedule.times:
            continue
        start = schedule.times[op.uid]
        end = start + max(1, machine.opcode_info(op).latency)
        for edge in graph.successors(op.uid):
            if edge.kind is not DepKind.FLOW:
                continue
            if edge.via not in (Via.REGISTER, Via.CARRIED):
                continue
            if edge.dst not in schedule.times:
                continue
            end = max(end, schedule.times[edge.dst] + ii * edge.distance + 1)
        lifetimes[op.dest] = (start, end)
    return lifetimes


def _copies_on_row(start: int, end: int, row: int, ii: int) -> int:
    """Live copies of a value on kernel row ``row``: count the absolute
    cycles of [start, end) congruent to ``row`` mod II — one iteration's
    copy per such cycle in steady state."""
    return sum(1 for t in range(start, end) if t % ii == row)


def check_kernel(
    schedule: ModuloSchedule, allocation: AllocationResult
) -> list[CheckFinding]:
    """Re-derive every allocation and codegen obligation and verify it."""
    loop = schedule.loop
    machine = schedule.machine
    ii = schedule.ii
    findings: list[CheckFinding] = []

    def finding(rule: str, severity: Severity, uids: tuple[int, ...], msg: str) -> None:
        findings.append(CheckFinding(STAGE, rule, severity, loop.name, uids, msg))

    graph = build_dependence_graph(loop)
    lifetimes = _derive_lifetimes(schedule, graph)

    # Mirror the allocator's live-out rule: the epilogue must still read
    # these values, so their lifetime spans at least one extra stage.
    extended = dict(lifetimes)
    for reg in loop.live_out:
        if reg in extended:
            start, end = extended[reg]
            extended[reg] = (start, max(end, start + ii + 1))

    # K-MVE: each expanded name's lifetime fits within II·copies and the
    # unroll factor covers the deepest expansion.
    mve = modulo_variable_expansion(schedule, graph)
    for reg, (start, end) in lifetimes.items():
        copies = mve.copies_per_value.get(reg)
        if copies is None:
            finding(
                "K-MVE", Severity.ERROR, (),
                f"value {reg.name} has a lifetime but no MVE copy count",
            )
            continue
        if end - start > ii * copies:
            finding(
                "K-MVE", Severity.ERROR, (),
                f"lifetime of {reg.name} is {end - start} cycles but "
                f"{copies} MVE copies cover only II·copies = {ii * copies}",
            )
        if copies > mve.unroll:
            finding(
                "K-MVE", Severity.ERROR, (),
                f"{reg.name} needs {copies} copies but the kernel is "
                f"unrolled only {mve.unroll}x",
            )

    # K-PRESSURE / K-ALLOC: independent MaxLive per file.
    derived: dict[str, int] = {}
    for row in range(ii):
        live_now: dict[str, int] = {}
        for reg, (start, end) in extended.items():
            copies = _copies_on_row(start, end, row, ii)
            if copies:
                file = register_file_of(reg)
                live_now[file] = live_now.get(file, 0) + copies
        for file, count in live_now.items():
            derived[file] = max(derived.get(file, 0), count)
    # Persistent pins: never-redefined carried entries and preheader
    # definitions each occupy one register for the whole invocation.
    body_defs = {op.dest for op in loop.body if op.dest is not None}
    for c in loop.carried:
        if c.exit == c.entry or c.exit not in body_defs:
            file = register_file_of(c.entry)
            derived[file] = derived.get(file, 0) + 1
    for op in loop.preheader:
        if op.dest is not None:
            file = register_file_of(op.dest)
            derived[file] = derived.get(file, 0) + 1

    files = set(derived) | set(allocation.pressures)
    for file in sorted(files):
        want = derived.get(file, 0)
        have = allocation.pressure(file)
        if want != have:
            finding(
                "K-PRESSURE", Severity.ERROR, (),
                f"register file {file}: allocator reports MaxLive {have} "
                f"but re-derivation finds {want}",
            )
        capacity = getattr(machine.register_files, _CAPACITY_ATTR[file])
        if want > capacity:
            finding(
                "K-ALLOC", Severity.ERROR, (),
                f"register file {file} needs {want} simultaneously live "
                f"values but holds {capacity}: two live values would "
                f"share a physical register",
            )

    # K-ROTIDX: rotating indices are unique within a file and cover
    # every value with a lifetime.
    file_of_name = {reg.name: register_file_of(reg) for reg in lifetimes}
    seen: dict[tuple[str, int], str] = {}
    for name, index in sorted(allocation.rotating_indices.items()):
        file = file_of_name.get(name)
        if file is None:
            finding(
                "K-ROTIDX", Severity.WARNING, (),
                f"rotating index assigned to unknown value {name}",
            )
            continue
        key = (file, index)
        if key in seen:
            finding(
                "K-ROTIDX", Severity.ERROR, (),
                f"values {seen[key]} and {name} share rotating base "
                f"{index} in file {file}",
            )
        seen[key] = name
    for name in sorted(file_of_name):
        if name not in allocation.rotating_indices:
            finding(
                "K-ROTIDX", Severity.ERROR, (),
                f"value {name} has a lifetime but no rotating index",
            )

    findings.extend(_check_spills(loop))
    findings.extend(_check_kernel_only(schedule, graph))
    return findings


def _check_spills(loop: Loop) -> list[CheckFinding]:
    """K-SPILL: every reload from a spill slot is preceded (in body
    order, i.e. same-iteration dataflow order) by exactly one store to
    that slot, so the reload observes the spilled definition."""
    findings: list[CheckFinding] = []
    store_at: dict[str, list[int]] = {}
    for index, op in enumerate(loop.body):
        if op.kind is OpKind.STORE and (op.array or "").startswith(SPILL_PREFIX):
            store_at.setdefault(op.array, []).append(index)
    for array, positions in sorted(store_at.items()):
        if len(positions) > 1:
            findings.append(
                CheckFinding(
                    STAGE, "K-SPILL", Severity.ERROR, loop.name, (),
                    f"spill slot {array} is stored {len(positions)} times; "
                    f"later stores clobber the spilled value",
                )
            )
    for index, op in enumerate(loop.body):
        if op.kind is not OpKind.LOAD:
            continue
        array = op.array or ""
        if not array.startswith(SPILL_PREFIX):
            continue
        stores = store_at.get(array, [])
        if not stores or min(stores) > index:
            findings.append(
                CheckFinding(
                    STAGE, "K-SPILL", Severity.ERROR, loop.name, (op.uid,),
                    f"reload from {array} has no earlier store: the "
                    f"spilled definition cannot reach it",
                )
            )
    return findings


def _check_kernel_only(
    schedule: ModuloSchedule, graph: DependenceGraph
) -> list[CheckFinding]:
    """K-KERNELONLY: regenerate kernel-only code and verify stage
    predicates and rotation offsets against independently derived
    producer stages."""
    loop = schedule.loop
    ii = schedule.ii
    findings: list[CheckFinding] = []

    def finding(uids: tuple[int, ...], msg: str) -> None:
        findings.append(
            CheckFinding(STAGE, "K-KERNELONLY", Severity.ERROR, loop.name, uids, msg)
        )

    try:
        code = generate_kernel_only_code(schedule, graph)
    except ValueError as exc:
        finding((), f"kernel-only code generation failed: {exc}")
        return findings

    producer_of: dict[VirtualRegister, Operation] = {
        op.dest: op for op in loop.body if op.dest is not None
    }
    carried_producer: dict[VirtualRegister, Operation] = {}
    for c in loop.carried:
        if isinstance(c.exit, VirtualRegister) and c.exit in producer_of:
            carried_producer[c.entry] = producer_of[c.exit]

    placed: set[int] = set()
    for row_index, row in enumerate(code.rows):
        for pop in row:
            op = pop.op
            placed.add(op.uid)
            if op.uid not in schedule.times:
                finding((op.uid,), "kernel-only op is not in the schedule")
                continue
            want_stage = schedule.stage_of(op.uid)
            if pop.stage != want_stage:
                finding(
                    (op.uid,),
                    f"stage predicate p{pop.stage} but operation issues "
                    f"in stage {want_stage}",
                )
            want_row = schedule.times[op.uid] % ii
            if row_index != want_row:
                finding(
                    (op.uid,),
                    f"placed in kernel row {row_index} but scheduled "
                    f"cycle {schedule.times[op.uid]} maps to row {want_row}",
                )
            findings.extend(
                _check_operand_refs(
                    schedule, op, pop.srcs, producer_of, carried_producer
                )
            )
    missing = {op.uid for op in loop.body} - placed
    for uid in sorted(missing):
        finding((uid,), "body operation missing from kernel-only code")
    return findings


def _check_operand_refs(
    schedule: ModuloSchedule,
    op: Operation,
    refs: tuple[object, ...],
    producer_of: dict[VirtualRegister, Operation],
    carried_producer: dict[VirtualRegister, Operation],
) -> list[CheckFinding]:
    loop = schedule.loop
    findings: list[CheckFinding] = []

    def finding(msg: str) -> None:
        findings.append(
            CheckFinding(
                STAGE, "K-KERNELONLY", Severity.ERROR, loop.name, (op.uid,), msg
            )
        )

    if len(refs) != len(op.srcs):
        finding(
            f"kernel-only op renders {len(refs)} operands "
            f"for {len(op.srcs)} sources"
        )
        return findings
    consumer_stage = schedule.stage_of(op.uid)
    for src, ref in zip(op.srcs, refs):
        if isinstance(src, Constant):
            continue
        assert isinstance(src, VirtualRegister)
        if src in producer_of:
            producer, distance = producer_of[src], 0
        elif src in carried_producer:
            producer, distance = carried_producer[src], 1
        else:
            # Loop invariant: must stay a static (non-rotating) operand.
            if isinstance(ref, RotatingRef):
                finding(
                    f"invariant operand {src.name} rendered as rotating "
                    f"reference {ref.render()}"
                )
            continue
        want_offset = consumer_stage + distance - schedule.stage_of(producer.uid)
        want_file = register_file_of(producer.dest)
        if not isinstance(ref, RotatingRef):
            finding(
                f"operand {src.name} (defined by uid {producer.uid}) "
                f"is not a rotating reference"
            )
            continue
        if ref.offset != want_offset or ref.file != want_file:
            finding(
                f"operand {src.name} resolves to {ref.render()} but the "
                f"defining iteration's value is {want_file}[·+{want_offset}] "
                f"(consumer stage {consumer_stage}, producer stage "
                f"{schedule.stage_of(producer.uid)}, distance {distance})"
            )
    return findings
