"""Drive every stage checker over a compiled loop.

``run_all_checks`` applies the vectorize, schedule, and kernel checkers
to each compiled unit and aggregates the findings into one
:class:`CheckReport`.  With an observability recorder active, every
finding is also emitted as a ``check`` Remark (plus one summary remark
per report) so ``--explain``, ``--stats``, and JSON traces surface
validation alongside the compiler's own provenance events.  Checkers
only read compilation state; they never mutate it.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.check.findings import CheckFinding, CheckReport
from repro.check.kernel_check import check_kernel
from repro.check.schedule_check import check_schedule
from repro.check.vectorize_check import check_vectorize
from repro.observability.recorder import active_recorder, maybe_span

if TYPE_CHECKING:  # avoid a circular import with the driver
    from repro.compiler.driver import CompiledLoop, CompiledUnit


def run_unit_checks(
    unit: CompiledUnit, machine: object
) -> list[CheckFinding]:
    """All findings for one compiled unit, across the three stages."""
    findings = list(check_vectorize(unit.transform, machine))
    findings += check_schedule(unit.schedule)
    findings += check_kernel(unit.schedule, unit.allocation)
    return findings


def run_all_checks(compiled: CompiledLoop) -> CheckReport:
    """Validate every unit of ``compiled`` and report the findings."""
    rec = active_recorder()
    with maybe_span(rec, "check", loop=compiled.source.name):
        findings: list[CheckFinding] = []
        for unit in compiled.units:
            findings.extend(run_unit_checks(unit, compiled.machine))
        report = CheckReport(
            loop=compiled.source.name,
            strategy=compiled.strategy.value,
            findings=findings,
            units_checked=len(compiled.units),
        )
        if rec is not None:
            rec.count("check.units_checked", len(compiled.units))
            rec.count("check.findings", len(findings))
    if rec is not None:
        for f in report.sorted_findings():
            rec.remark(
                "check",
                compiled.source.name,
                f.rule,
                f.render(),
                severity=f.severity.value,
                stage=f.stage,
                uids=list(f.uids),
                strategy=compiled.strategy.value,
            )
        rec.remark(
            "check",
            compiled.source.name,
            "check-summary",
            report.summary(),
            ok=report.ok,
            findings=len(report.findings),
            errors=len(report.errors()),
            strategy=compiled.strategy.value,
        )
    return report
