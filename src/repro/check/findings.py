"""Findings model for the translation-validation checkers.

A :class:`CheckFinding` is one discharged-or-violated obligation: which
stage checker raised it, a stable rule id (``S-DEP``, ``K-ROTIDX``, ...),
a severity, the operation uids involved, and a human-readable message.
A :class:`CheckReport` aggregates the findings for one compiled loop;
``ok`` means no ERROR-severity finding survived.  Severity policy:

* ``ERROR`` — a correctness obligation is violated; the artifact must
  not ship (nonzero exit under ``--check``, raise under ``REPRO_CHECK``).
* ``WARNING`` — suspicious but not provably wrong (e.g. a transfer or
  merge with no deriving obligation); reported, never fatal.
* ``INFO`` — a checker skipped ground it cannot re-derive (e.g. a
  transform with no recorded source loop); reported for transparency.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field


class Severity(enum.Enum):
    ERROR = "error"
    WARNING = "warning"
    INFO = "info"

    @property
    def rank(self) -> int:
        return {"error": 0, "warning": 1, "info": 2}[self.value]


@dataclass(frozen=True)
class CheckFinding:
    """One checker verdict on one obligation."""

    stage: str  # "vectorize" | "schedule" | "kernel"
    rule: str  # stable rule id, e.g. "S-DEP"
    severity: Severity
    loop: str  # the (unit) loop the finding is about
    uids: tuple[int, ...]  # operation uids involved (may be empty)
    message: str

    def render(self) -> str:
        where = f" (uids {', '.join(map(str, self.uids))})" if self.uids else ""
        return (
            f"[{self.severity.value.upper()} {self.rule}] "
            f"{self.loop}: {self.message}{where}"
        )

    def to_json(self) -> dict[str, object]:
        return {
            "stage": self.stage,
            "rule": self.rule,
            "severity": self.severity.value,
            "loop": self.loop,
            "uids": list(self.uids),
            "message": self.message,
        }


@dataclass
class CheckReport:
    """All findings for one compiled loop (every unit, every stage)."""

    loop: str
    strategy: str
    findings: list[CheckFinding] = field(default_factory=list)
    units_checked: int = 0

    @property
    def ok(self) -> bool:
        return not self.errors()

    def errors(self) -> list[CheckFinding]:
        return [f for f in self.findings if f.severity is Severity.ERROR]

    def sorted_findings(self) -> list[CheckFinding]:
        return sorted(
            self.findings, key=lambda f: (f.severity.rank, f.stage, f.rule)
        )

    def summary(self) -> str:
        errors = len(self.errors())
        status = "OK" if errors == 0 else f"{errors} ERROR(s)"
        return (
            f"check {self.loop} [{self.strategy}]: {status} "
            f"({len(self.findings)} finding(s), "
            f"{self.units_checked} unit(s) checked)"
        )

    def render_text(self) -> str:
        lines = [self.summary()]
        lines += [f"  {f.render()}" for f in self.sorted_findings()]
        return "\n".join(lines)

    def to_json(self) -> dict[str, object]:
        return {
            "loop": self.loop,
            "strategy": self.strategy,
            "ok": self.ok,
            "units_checked": self.units_checked,
            "findings": [f.to_json() for f in self.sorted_findings()],
        }


class TranslationValidationError(RuntimeError):
    """A compiled artifact failed translation validation (``REPRO_CHECK``)."""

    def __init__(self, report: CheckReport):
        self.report = report
        super().__init__(report.render_text())
