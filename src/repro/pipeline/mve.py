"""Modulo variable expansion (Lam, PLDI 1988).

Rotating register files let each kernel iteration write a fresh physical
register; machines without them achieve the same effect by *unrolling the
kernel* and renaming: a value live across ``k`` kernel copies needs
``k+1`` names, and the kernel must be unrolled by the least common
multiple-free bound ``max_v ceil(lifetime(v) / II)`` so each copy can use
a distinct name round-robin.  The paper's Trimaran machine has rotating
registers; this module provides the fallback the paper points to ("if
rotating registers are not available, a similar effect is achievable with
modulo variable expansion [19, 32]").
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.dependence.graph import DependenceGraph, DepKind, Via
from repro.ir.values import VirtualRegister
from repro.pipeline.scheduler import ModuloSchedule
from repro.regalloc.allocator import register_file_of


@dataclass
class MVEResult:
    """Kernel unroll factor and renaming requirements."""

    unroll: int
    copies_per_value: dict[VirtualRegister, int]
    registers_per_file: dict[str, int] = field(default_factory=dict)

    def names_for(self, reg: VirtualRegister) -> list[str]:
        copies = self.copies_per_value.get(reg, 1)
        return [f"{reg.name}#{k}" for k in range(copies)]


def value_lifetimes(
    schedule: ModuloSchedule, graph: DependenceGraph
) -> dict[VirtualRegister, tuple[int, int]]:
    """Absolute [def, last-use) intervals for every defined value."""
    loop = schedule.loop
    machine = schedule.machine
    ii = schedule.ii
    lifetimes: dict[VirtualRegister, tuple[int, int]] = {}
    for op in loop.body:
        if op.dest is None:
            continue
        start = schedule.times[op.uid]
        end = start + max(1, machine.opcode_info(op).latency)
        for edge in graph.successors(op.uid):
            if edge.kind is not DepKind.FLOW or edge.via not in (
                Via.REGISTER,
                Via.CARRIED,
            ):
                continue
            end = max(end, schedule.times[edge.dst] + ii * edge.distance + 1)
        lifetimes[op.dest] = (start, end)
    return lifetimes


def modulo_variable_expansion(
    schedule: ModuloSchedule, graph: DependenceGraph
) -> MVEResult:
    """Compute the kernel unroll factor and per-value name counts."""
    ii = schedule.ii
    lifetimes = value_lifetimes(schedule, graph)
    copies: dict[VirtualRegister, int] = {}
    for reg, (start, end) in lifetimes.items():
        copies[reg] = max(1, math.ceil((end - start) / ii))
    unroll = max(copies.values(), default=1)

    per_file: dict[str, int] = {}
    for reg, count in copies.items():
        file = register_file_of(reg)
        per_file[file] = per_file.get(file, 0) + count
    return MVEResult(
        unroll=unroll, copies_per_value=copies, registers_per_file=per_file
    )


def expanded_kernel_listing(
    schedule: ModuloSchedule, graph: DependenceGraph
) -> str:
    """The MVE-unrolled kernel: ``unroll`` copies of the kernel with
    destination registers renamed round-robin.  Copy ``u`` of the kernel
    writes name ``v#(u mod copies(v))`` for each value ``v``."""
    mve = modulo_variable_expansion(schedule, graph)
    lines = [
        f"MVE kernel of {schedule.loop.name}: unroll x{mve.unroll} "
        f"(II {schedule.ii} -> effective {schedule.ii * mve.unroll})"
    ]
    rows = schedule.kernel_rows()
    for u in range(mve.unroll):
        lines.append(f"  copy {u}:")
        for cycle, row in enumerate(rows):
            rendered = []
            for op, stage in row:
                if op.dest is not None:
                    n = mve.copies_per_value[op.dest]
                    name = f"{op.dest.name}#{u % n}"
                    rendered.append(f"{name} = {op.mnemonic()}[s{stage}]")
                else:
                    rendered.append(f"{op.mnemonic()}[s{stage}]")
            lines.append(
                f"    cycle {u * schedule.ii + cycle}: " + ", ".join(rendered)
            )
    return "\n".join(lines)
