"""Minimum initiation interval bounds, with provenance.

``ResMII`` — the resource-constrained bound — is computed by the same
greedy bin-packing the partitioner uses (each operation binned once with
its actual opcode).  ``RecMII`` — the recurrence-constrained bound — is
the smallest II admitting no positive-weight dependence cycle under edge
weights ``delay(e) - II * distance(e)``, found by binary search with
Bellman-Ford positive-cycle detection.

The Bellman-Ford probes run on :class:`GraphArrays` — the dependence
graph flattened once per loop into dense-index edge arrays with a
preallocated distance scratch — so each of the O(log II) probes of the
binary search is pure list indexing with no dict hashing and no
per-probe allocation beyond the weight table.  The hot detector
(:func:`_relax_fast`) skips predecessor tracking entirely; the
predecessor-tracking variant (:func:`_relax_pred`) runs only for
critical-cycle extraction, off the hot path.

Both bounds come back as :class:`int` subclasses that additionally carry
*why* the bound is what it is: :class:`ResMII` holds the per-resource
pressure table and the bottleneck resource instance; :class:`RecMII`
holds the critical recurrence cycle (the dependence edges whose
delay/distance ratio pins the bound).  Existing arithmetic/comparison
callers are unaffected — the provenance rides along for the remark
emitters and the ``--explain`` renderers.
"""

from __future__ import annotations

from repro.dependence.graph import DepEdge, DependenceGraph, DepKind
from repro.ir.loop import Loop
from repro.machine.machine import MachineDescription
from repro.observability.recorder import active_recorder
from repro.vectorize.bins import Bins, placement_freedom


class DependenceCycleError(RuntimeError):
    """The dependence graph has a zero-distance cycle: the loop body
    requires an operation to precede itself within one iteration, so no
    initiation interval is feasible.  ``cycle`` names the operations on
    the offending cycle in dependence order."""

    def __init__(self, graph: DependenceGraph, cycle_edges: list[DepEdge]):
        self.cycle_edges = tuple(cycle_edges)
        self.cycle = tuple(e.src for e in cycle_edges)
        ops = " -> ".join(
            f"{uid}:{graph.ops[uid].mnemonic()}" for uid in self.cycle
        )
        closing = f" -> {self.cycle[0]}:{graph.ops[self.cycle[0]].mnemonic()}"
        super().__init__(
            "dependence graph has a zero-distance cycle through "
            f"{ops}{closing if self.cycle else ''}"
        )


class ResMII(int):
    """Resource-constrained bound plus its provenance.

    ``pressure`` maps each resource instance to its packed busy cycles
    (per VL original iterations on an untransformed loop); ``bottleneck``
    is the instance whose pressure equals the bound, or ``None`` when the
    loop exerts no resource pressure at all.
    """

    pressure: dict[str, int]
    bottleneck: str | None

    def __new__(
        cls,
        value: int,
        pressure: dict[str, int] | None = None,
        bottleneck: str | None = None,
    ) -> "ResMII":
        self = super().__new__(cls, value)
        self.pressure = dict(pressure or {})
        self.bottleneck = bottleneck
        return self

    def pressure_rows(self) -> list[tuple[str, int]]:
        """Pressure table sorted most-loaded-first (render order)."""
        return sorted(self.pressure.items(), key=lambda kv: (-kv[1], kv[0]))


class RecMII(int):
    """Recurrence-constrained bound plus its critical cycle.

    ``cycle`` lists the operation uids on a recurrence whose
    ``ceil(delay / distance)`` equals the bound (empty when no recurrence
    constrains the loop); ``cycle_edges`` are the dependence edges walked,
    and ``cycle_delay`` / ``cycle_distance`` their totals.
    """

    cycle: tuple[int, ...]
    cycle_edges: tuple[DepEdge, ...]
    cycle_delay: int
    cycle_distance: int

    def __new__(
        cls,
        value: int,
        cycle_edges: tuple[DepEdge, ...] | list[DepEdge] = (),
        cycle_delay: int = 0,
        cycle_distance: int = 0,
    ) -> "RecMII":
        self = super().__new__(cls, value)
        self.cycle_edges = tuple(cycle_edges)
        self.cycle = tuple(e.src for e in self.cycle_edges)
        self.cycle_delay = cycle_delay
        self.cycle_distance = cycle_distance
        return self

    def describe_cycle(self, ops=None) -> str:
        """``uid:mnemonic -> ...`` walk of the critical cycle.  ``ops``
        may be a :class:`DependenceGraph` or a ``{uid: Operation}`` map;
        without it the walk shows bare uids."""
        if not self.cycle:
            return "(no recurrence)"
        if ops is not None and hasattr(ops, "ops"):
            ops = ops.ops

        def tag(uid: int) -> str:
            if ops is not None and uid in ops:
                return f"{uid}:{ops[uid].mnemonic()}"
            return str(uid)

        walk = " -> ".join(tag(uid) for uid in self.cycle)
        return f"{walk} -> {tag(self.cycle[0])}"


def edge_delay(
    edge: DepEdge, graph: DependenceGraph, machine: MachineDescription
) -> int:
    """Minimum issue separation implied by a dependence edge.

    Flow dependences wait for the producer's latency; anti dependences
    allow same-cycle issue; output dependences require one cycle so the
    later write wins.
    """
    if edge.kind is DepKind.FLOW:
        return machine.opcode_info(graph.ops[edge.src]).latency
    if edge.kind is DepKind.ANTI:
        return 0
    return 1


def edge_delays(
    graph: DependenceGraph, machine: MachineDescription
) -> dict[DepEdge, int]:
    """Per-edge delay table as a dict — the shape external callers (the
    oracle, the schedule checker) consume."""
    return {e: edge_delay(e, graph, machine) for e in graph.edges}


class GraphArrays:
    """A dependence graph flattened to dense-index edge arrays.

    Built once per (loop, machine); every Bellman-Ford probe, height
    relaxation, and scheduling pass then works on parallel int lists —
    ``esrc``/``edst`` (dense node indices), ``delay``/``edist`` (edge
    delay and iteration distance) — in ``graph.edges`` order, with
    ``_dist``/``_pred`` scratch reused across probes.
    """

    __slots__ = (
        "graph",
        "uids",
        "index",
        "edges",
        "esrc",
        "edst",
        "delay",
        "edist",
        "max_delay",
        "_dist",
        "_pred",
    )

    def __init__(
        self,
        graph: DependenceGraph,
        machine: MachineDescription,
        delays: dict[DepEdge, int] | None = None,
    ):
        self.graph = graph
        self.uids = list(graph.node_ids())
        index = {uid: i for i, uid in enumerate(self.uids)}
        self.index = index
        edges = list(graph.edges)
        self.edges = edges
        self.esrc = [index[e.src] for e in edges]
        self.edst = [index[e.dst] for e in edges]
        if delays is None:
            self.delay = [edge_delay(e, graph, machine) for e in edges]
        else:
            self.delay = [delays[e] for e in edges]
        self.edist = [e.distance for e in edges]
        self.max_delay = max(self.delay, default=0)
        self._dist = [0] * len(self.uids)
        self._pred = [-1] * len(self.uids)


def _relax_fast(arrays: GraphArrays, ii: int) -> int:
    """Bellman-Ford longest-path relaxation under weights
    ``delay - ii*distance``, detection only (no predecessor tracking).
    Returns a dense node index that still relaxed on the |V|-th round —
    the positive-cycle witness — or ``-1`` when no positive cycle exists.

    Distances live in the arrays' preallocated scratch; the only per-call
    allocation is the II-weighted edge table.
    """
    dist = arrays._dist
    n = len(dist)
    for i in range(n):
        dist[i] = 0
    edist = arrays.edist
    weights = [
        (s, d, dl - ii * di)
        for s, d, dl, di in zip(arrays.esrc, arrays.edst, arrays.delay, edist)
    ]
    m = len(weights)
    witness = -1
    relaxations = 0
    rounds = 0
    try:
        for _ in range(n):
            rounds += 1
            changed = False
            for s, d, w in weights:
                nd = dist[s] + w
                if nd > dist[d]:
                    dist[d] = nd
                    changed = True
                    witness = d
                    relaxations += 1
            if not changed:
                return -1
        return witness
    finally:
        rec = active_recorder()
        if rec is not None:
            rec.count("mii.bf_runs")
            rec.count("mii.bf_relaxations", relaxations)
            rec.count("mii.bf_edges_scanned", rounds * m)


def _relax_pred(arrays: GraphArrays, ii: int) -> tuple[list[int], int]:
    """Like :func:`_relax_fast` but tracking, per dense node index, the
    index of the edge that last relaxed it (``-1`` = never relaxed).
    Returns ``(pred, witness)``.  Off the hot path: only the one or two
    critical-cycle extractions per loop pay for the tracking."""
    dist = arrays._dist
    pred = arrays._pred
    n = len(dist)
    for i in range(n):
        dist[i] = 0
        pred[i] = -1
    weights = [
        (j, s, d, dl - ii * di)
        for j, (s, d, dl, di) in enumerate(
            zip(arrays.esrc, arrays.edst, arrays.delay, arrays.edist)
        )
    ]
    m = len(weights)
    witness = -1
    relaxations = 0
    rounds = 0
    try:
        for _ in range(n):
            rounds += 1
            changed = False
            for j, s, d, w in weights:
                nd = dist[s] + w
                if nd > dist[d]:
                    dist[d] = nd
                    pred[d] = j
                    changed = True
                    witness = d
                    relaxations += 1
            if not changed:
                return pred, -1
        return pred, witness
    finally:
        rec = active_recorder()
        if rec is not None:
            rec.count("mii.bf_runs")
            rec.count("mii.bf_relaxations", relaxations)
            rec.count("mii.bf_edges_scanned", rounds * m)


def _relax(
    graph: DependenceGraph,
    machine: MachineDescription,
    ii: int,
    delays: dict[DepEdge, int] | None = None,
    dist: dict[int, int] | None = None,
    arrays: GraphArrays | None = None,
) -> tuple[dict[int, DepEdge], int | None]:
    """Dict-shaped view of the flat relaxation (the original public
    contract): returns the predecessor-edge map keyed by uid and the
    witness uid (``None`` when no positive cycle exists).  ``dist``, when
    given, is refilled with the final per-uid distances."""
    if arrays is None:
        arrays = GraphArrays(graph, machine, delays)
    pred_idx, witness = _relax_pred(arrays, ii)
    uids = arrays.uids
    if dist is not None:
        scratch = arrays._dist
        for i, uid in enumerate(uids):
            dist[uid] = scratch[i]
    pred = {
        uids[d]: arrays.edges[j]
        for d, j in enumerate(pred_idx)
        if j >= 0
    }
    return pred, (None if witness < 0 else uids[witness])


def _has_positive_cycle(
    graph: DependenceGraph,
    machine: MachineDescription,
    ii: int,
    delays: dict[DepEdge, int] | None = None,
    dist: dict[int, int] | None = None,
    arrays: GraphArrays | None = None,
) -> bool:
    """Does any cycle have positive total weight ``delay - ii*distance``?"""
    if arrays is None:
        arrays = GraphArrays(graph, machine, delays)
    witness = _relax_fast(arrays, ii)
    if dist is not None:
        scratch = arrays._dist
        for i, uid in enumerate(arrays.uids):
            dist[uid] = scratch[i]
    return witness >= 0


def _extract_cycle_edges(arrays: GraphArrays, ii: int) -> list[DepEdge]:
    """The edges of one positive-weight cycle at ``ii`` (empty when no
    such cycle exists).  The witness of the final relaxation round is
    walked back |V| predecessor steps to land inside the cycle, then the
    cycle is collected."""
    pred, witness = _relax_pred(arrays, ii)
    if witness < 0:
        return []
    esrc = arrays.esrc
    node = witness
    for _ in range(len(arrays.uids)):
        node = esrc[pred[node]]
    cycle: list[DepEdge] = []
    cur = node
    for _ in range(len(arrays.uids) + 1):
        j = pred[cur]
        cycle.append(arrays.edges[j])
        cur = esrc[j]
        if cur == node:
            break
    cycle.reverse()
    return cycle


def _extract_positive_cycle(
    graph: DependenceGraph,
    machine: MachineDescription,
    ii: int,
    delays: dict[DepEdge, int] | None = None,
    arrays: GraphArrays | None = None,
) -> list[DepEdge]:
    if arrays is None:
        arrays = GraphArrays(graph, machine, delays)
    return _extract_cycle_edges(arrays, ii)


def res_mii(loop: Loop, machine: MachineDescription) -> ResMII:
    """Resource-constrained minimum II of a (transformed) loop body."""
    bins = Bins(machine)
    ordered = sorted(
        loop.body,
        key=lambda op: placement_freedom(machine, machine.opcode_info(op)),
    )
    for op in ordered:
        bins.reserve_least_used(machine.opcode_info(op), ("op", op.uid))
    high = bins.high_water_mark()
    bottleneck = None
    if high > 0:
        bottleneck = min(
            (inst for inst, w in bins.weights.items() if w == high),
        )
    return ResMII(max(1, high), pressure=bins.weights, bottleneck=bottleneck)


def rec_mii(
    graph: DependenceGraph,
    machine: MachineDescription,
    delays: dict[DepEdge, int] | None = None,
    arrays: GraphArrays | None = None,
) -> RecMII:
    """Recurrence-constrained minimum II, carrying the critical cycle."""
    if not graph.edges:
        return RecMII(1)
    if arrays is None:
        arrays = GraphArrays(graph, machine, delays)
    hi = max(1, arrays.max_delay * len(graph.ops))
    if _relax_fast(arrays, hi) >= 0:
        # A cycle positive at an II exceeding any delay/distance ratio can
        # only carry zero total distance: the loop body cycles on itself.
        raise DependenceCycleError(graph, _extract_cycle_edges(arrays, hi))
    lo = 1
    while lo < hi:
        mid = (lo + hi) // 2
        if _relax_fast(arrays, mid) >= 0:
            lo = mid + 1
        else:
            hi = mid
    if lo <= 1:
        return RecMII(1)
    # A cycle still positive one II below the bound achieves exactly
    # ceil(delay/distance) == lo: the critical recurrence.
    cycle = _extract_cycle_edges(arrays, lo - 1)
    delay_of = dict(zip(arrays.edges, arrays.delay))
    delay = sum(delay_of[e] for e in cycle)
    distance = sum(e.distance for e in cycle)
    return RecMII(lo, cycle, delay, distance)


def minimum_ii(
    loop: Loop,
    graph: DependenceGraph,
    machine: MachineDescription,
    delays: dict[DepEdge, int] | None = None,
    arrays: GraphArrays | None = None,
) -> tuple[int, ResMII, RecMII]:
    """(MII, ResMII, RecMII)."""
    res = res_mii(loop, machine)
    rec = rec_mii(graph, machine, delays, arrays)
    return max(res, rec), res, rec
