"""Minimum initiation interval bounds.

``ResMII`` — the resource-constrained bound — is computed by the same
greedy bin-packing the partitioner uses (each operation binned once with
its actual opcode).  ``RecMII`` — the recurrence-constrained bound — is
the smallest II admitting no positive-weight dependence cycle under edge
weights ``delay(e) - II * distance(e)``, found by binary search with
Bellman-Ford positive-cycle detection.
"""

from __future__ import annotations

from repro.dependence.graph import DepEdge, DependenceGraph, DepKind
from repro.ir.loop import Loop
from repro.machine.machine import MachineDescription
from repro.vectorize.bins import Bins, placement_freedom


def edge_delay(
    edge: DepEdge, graph: DependenceGraph, machine: MachineDescription
) -> int:
    """Minimum issue separation implied by a dependence edge.

    Flow dependences wait for the producer's latency; anti dependences
    allow same-cycle issue; output dependences require one cycle so the
    later write wins.
    """
    if edge.kind is DepKind.FLOW:
        return machine.opcode_info(graph.ops[edge.src]).latency
    if edge.kind is DepKind.ANTI:
        return 0
    return 1


def res_mii(loop: Loop, machine: MachineDescription) -> int:
    """Resource-constrained minimum II of a (transformed) loop body."""
    bins = Bins(machine)
    ordered = sorted(
        loop.body,
        key=lambda op: placement_freedom(machine, machine.opcode_info(op)),
    )
    for op in ordered:
        bins.reserve_least_used(machine.opcode_info(op), ("op", op.uid))
    return max(1, bins.high_water_mark())


def _has_positive_cycle(
    graph: DependenceGraph, machine: MachineDescription, ii: int
) -> bool:
    """Bellman-Ford longest-path relaxation: does any cycle have positive
    total weight ``delay - ii*distance``?"""
    nodes = graph.node_ids()
    dist = {n: 0 for n in nodes}
    weights = [
        (e.src, e.dst, edge_delay(e, graph, machine) - ii * e.distance)
        for e in graph.edges
    ]
    for _ in range(len(nodes)):
        changed = False
        for src, dst, w in weights:
            if dist[src] + w > dist[dst]:
                dist[dst] = dist[src] + w
                changed = True
        if not changed:
            return False
    return True


def rec_mii(graph: DependenceGraph, machine: MachineDescription) -> int:
    """Recurrence-constrained minimum II."""
    if not graph.edges:
        return 1
    lo, hi = 1, 1
    max_delay = max(edge_delay(e, graph, machine) for e in graph.edges)
    hi = max(1, max_delay * len(graph.ops))
    if _has_positive_cycle(graph, machine, hi):
        raise RuntimeError("dependence graph has a zero-distance cycle")
    while lo < hi:
        mid = (lo + hi) // 2
        if _has_positive_cycle(graph, machine, mid):
            lo = mid + 1
        else:
            hi = mid
    return lo


def minimum_ii(
    loop: Loop, graph: DependenceGraph, machine: MachineDescription
) -> tuple[int, int, int]:
    """(MII, ResMII, RecMII)."""
    res = res_mii(loop, machine)
    rec = rec_mii(graph, machine)
    return max(res, rec), res, rec
