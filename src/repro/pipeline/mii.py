"""Minimum initiation interval bounds, with provenance.

``ResMII`` — the resource-constrained bound — is computed by the same
greedy bin-packing the partitioner uses (each operation binned once with
its actual opcode).  ``RecMII`` — the recurrence-constrained bound — is
the smallest II admitting no positive-weight dependence cycle under edge
weights ``delay(e) - II * distance(e)``, found by binary search with
Bellman-Ford positive-cycle detection.

Both bounds come back as :class:`int` subclasses that additionally carry
*why* the bound is what it is: :class:`ResMII` holds the per-resource
pressure table and the bottleneck resource instance; :class:`RecMII`
holds the critical recurrence cycle (the dependence edges whose
delay/distance ratio pins the bound), extracted by predecessor tracking
in the Bellman-Ford relaxation.  Existing arithmetic/comparison callers
are unaffected — the provenance rides along for the remark emitters and
the ``--explain`` renderers.
"""

from __future__ import annotations

from repro.dependence.graph import DepEdge, DependenceGraph, DepKind
from repro.ir.loop import Loop
from repro.machine.machine import MachineDescription
from repro.observability.recorder import active_recorder
from repro.vectorize.bins import Bins, placement_freedom


class DependenceCycleError(RuntimeError):
    """The dependence graph has a zero-distance cycle: the loop body
    requires an operation to precede itself within one iteration, so no
    initiation interval is feasible.  ``cycle`` names the operations on
    the offending cycle in dependence order."""

    def __init__(self, graph: DependenceGraph, cycle_edges: list[DepEdge]):
        self.cycle_edges = tuple(cycle_edges)
        self.cycle = tuple(e.src for e in cycle_edges)
        ops = " -> ".join(
            f"{uid}:{graph.ops[uid].mnemonic()}" for uid in self.cycle
        )
        closing = f" -> {self.cycle[0]}:{graph.ops[self.cycle[0]].mnemonic()}"
        super().__init__(
            "dependence graph has a zero-distance cycle through "
            f"{ops}{closing if self.cycle else ''}"
        )


class ResMII(int):
    """Resource-constrained bound plus its provenance.

    ``pressure`` maps each resource instance to its packed busy cycles
    (per VL original iterations on an untransformed loop); ``bottleneck``
    is the instance whose pressure equals the bound, or ``None`` when the
    loop exerts no resource pressure at all.
    """

    pressure: dict[str, int]
    bottleneck: str | None

    def __new__(
        cls,
        value: int,
        pressure: dict[str, int] | None = None,
        bottleneck: str | None = None,
    ) -> "ResMII":
        self = super().__new__(cls, value)
        self.pressure = dict(pressure or {})
        self.bottleneck = bottleneck
        return self

    def pressure_rows(self) -> list[tuple[str, int]]:
        """Pressure table sorted most-loaded-first (render order)."""
        return sorted(self.pressure.items(), key=lambda kv: (-kv[1], kv[0]))


class RecMII(int):
    """Recurrence-constrained bound plus its critical cycle.

    ``cycle`` lists the operation uids on a recurrence whose
    ``ceil(delay / distance)`` equals the bound (empty when no recurrence
    constrains the loop); ``cycle_edges`` are the dependence edges walked,
    and ``cycle_delay`` / ``cycle_distance`` their totals.
    """

    cycle: tuple[int, ...]
    cycle_edges: tuple[DepEdge, ...]
    cycle_delay: int
    cycle_distance: int

    def __new__(
        cls,
        value: int,
        cycle_edges: tuple[DepEdge, ...] | list[DepEdge] = (),
        cycle_delay: int = 0,
        cycle_distance: int = 0,
    ) -> "RecMII":
        self = super().__new__(cls, value)
        self.cycle_edges = tuple(cycle_edges)
        self.cycle = tuple(e.src for e in self.cycle_edges)
        self.cycle_delay = cycle_delay
        self.cycle_distance = cycle_distance
        return self

    def describe_cycle(self, ops=None) -> str:
        """``uid:mnemonic -> ...`` walk of the critical cycle.  ``ops``
        may be a :class:`DependenceGraph` or a ``{uid: Operation}`` map;
        without it the walk shows bare uids."""
        if not self.cycle:
            return "(no recurrence)"
        if ops is not None and hasattr(ops, "ops"):
            ops = ops.ops

        def tag(uid: int) -> str:
            if ops is not None and uid in ops:
                return f"{uid}:{ops[uid].mnemonic()}"
            return str(uid)

        walk = " -> ".join(tag(uid) for uid in self.cycle)
        return f"{walk} -> {tag(self.cycle[0])}"


def edge_delay(
    edge: DepEdge, graph: DependenceGraph, machine: MachineDescription
) -> int:
    """Minimum issue separation implied by a dependence edge.

    Flow dependences wait for the producer's latency; anti dependences
    allow same-cycle issue; output dependences require one cycle so the
    later write wins.
    """
    if edge.kind is DepKind.FLOW:
        return machine.opcode_info(graph.ops[edge.src]).latency
    if edge.kind is DepKind.ANTI:
        return 0
    return 1


def edge_delays(
    graph: DependenceGraph, machine: MachineDescription
) -> dict[DepEdge, int]:
    """Per-edge delay table, computed once per (loop, machine).

    Shared by ``res_mii``/``rec_mii``/``_heights``/``_try_schedule`` so
    the repeated opcode resolution per edge per relaxation round (and per
    II probe of the RecMII binary search) happens exactly once."""
    return {e: edge_delay(e, graph, machine) for e in graph.edges}


def res_mii(loop: Loop, machine: MachineDescription) -> ResMII:
    """Resource-constrained minimum II of a (transformed) loop body."""
    bins = Bins(machine)
    ordered = sorted(
        loop.body,
        key=lambda op: placement_freedom(machine, machine.opcode_info(op)),
    )
    for op in ordered:
        bins.reserve_least_used(machine.opcode_info(op), ("op", op.uid))
    high = bins.high_water_mark()
    bottleneck = None
    if high > 0:
        bottleneck = min(
            (inst for inst, w in bins.weights.items() if w == high),
        )
    return ResMII(max(1, high), pressure=bins.weights, bottleneck=bottleneck)


def _relax(
    graph: DependenceGraph,
    machine: MachineDescription,
    ii: int,
    delays: dict[DepEdge, int] | None = None,
    dist: dict[int, int] | None = None,
) -> tuple[dict[int, DepEdge], int | None]:
    """Bellman-Ford longest-path relaxation under weights
    ``delay - ii*distance`` with predecessor tracking.  Returns the
    predecessor-edge map and a node that still relaxed on the |V|-th
    round (``None`` when no positive cycle exists).

    ``delays`` is the precomputed :func:`edge_delays` table; ``dist`` an
    optional scratch distance array reused (and reset) across the RecMII
    binary search's II probes."""
    nodes = graph.node_ids()
    if delays is None:
        delays = edge_delays(graph, machine)
    if dist is None:
        dist = {}
    for n in nodes:
        dist[n] = 0
    pred: dict[int, DepEdge] = {}
    weights = [(e, delays[e] - ii * e.distance) for e in graph.edges]
    witness: int | None = None
    relaxations = 0
    rounds = 0
    try:
        for _ in range(len(nodes)):
            rounds += 1
            changed = False
            for e, w in weights:
                if dist[e.src] + w > dist[e.dst]:
                    dist[e.dst] = dist[e.src] + w
                    pred[e.dst] = e
                    changed = True
                    witness = e.dst
                    relaxations += 1
            if not changed:
                return pred, None
        return pred, witness
    finally:
        rec = active_recorder()
        if rec is not None:
            rec.count("mii.bf_runs")
            rec.count("mii.bf_relaxations", relaxations)
            rec.count("mii.bf_edges_scanned", rounds * len(weights))


def _has_positive_cycle(
    graph: DependenceGraph,
    machine: MachineDescription,
    ii: int,
    delays: dict[DepEdge, int] | None = None,
    dist: dict[int, int] | None = None,
) -> bool:
    """Does any cycle have positive total weight ``delay - ii*distance``?"""
    _, witness = _relax(graph, machine, ii, delays, dist)
    return witness is not None


def _extract_positive_cycle(
    graph: DependenceGraph,
    machine: MachineDescription,
    ii: int,
    delays: dict[DepEdge, int] | None = None,
) -> list[DepEdge]:
    """The edges of one positive-weight cycle at ``ii`` (empty when no
    such cycle exists).  The witness of the final relaxation round is
    walked back |V| predecessor steps to land inside the cycle, then the
    cycle is collected."""
    pred, witness = _relax(graph, machine, ii, delays)
    if witness is None:
        return []
    node = witness
    for _ in range(len(graph.ops)):
        node = pred[node].src
    cycle: list[DepEdge] = []
    cur = node
    for _ in range(len(graph.ops) + 1):
        edge = pred[cur]
        cycle.append(edge)
        cur = edge.src
        if cur == node:
            break
    cycle.reverse()
    return cycle


def rec_mii(
    graph: DependenceGraph,
    machine: MachineDescription,
    delays: dict[DepEdge, int] | None = None,
) -> RecMII:
    """Recurrence-constrained minimum II, carrying the critical cycle."""
    if not graph.edges:
        return RecMII(1)
    if delays is None:
        delays = edge_delays(graph, machine)
    dist: dict[int, int] = {}
    max_delay = max(delays[e] for e in graph.edges)
    hi = max(1, max_delay * len(graph.ops))
    if _has_positive_cycle(graph, machine, hi, delays, dist):
        # A cycle positive at an II exceeding any delay/distance ratio can
        # only carry zero total distance: the loop body cycles on itself.
        raise DependenceCycleError(
            graph, _extract_positive_cycle(graph, machine, hi, delays)
        )
    lo = 1
    while lo < hi:
        mid = (lo + hi) // 2
        if _has_positive_cycle(graph, machine, mid, delays, dist):
            lo = mid + 1
        else:
            hi = mid
    if lo <= 1:
        return RecMII(1)
    # A cycle still positive one II below the bound achieves exactly
    # ceil(delay/distance) == lo: the critical recurrence.
    cycle = _extract_positive_cycle(graph, machine, lo - 1, delays)
    delay = sum(delays[e] for e in cycle)
    distance = sum(e.distance for e in cycle)
    return RecMII(lo, cycle, delay, distance)


def minimum_ii(
    loop: Loop,
    graph: DependenceGraph,
    machine: MachineDescription,
    delays: dict[DepEdge, int] | None = None,
) -> tuple[int, ResMII, RecMII]:
    """(MII, ResMII, RecMII)."""
    res = res_mii(loop, machine)
    rec = rec_mii(graph, machine, delays)
    return max(res, rec), res, rec
