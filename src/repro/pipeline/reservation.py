"""Modulo reservation table.

Resource conflicts in a modulo schedule recur every II cycles, so the
table has II rows; an operation issued at cycle ``t`` reserves its
resources in row ``t mod II``.  Multi-cycle reservations (non-pipelined
divides) occupy consecutive rows.  Each resource class offers its member
instances as alternatives; placement picks free instances and remembers
them so eviction can release exactly what an operation held.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.ir.operations import Operation
from repro.machine.machine import MachineDescription

if TYPE_CHECKING:  # avoid the scheduler <-> reservation import cycle
    from repro.pipeline.scheduler import ModuloSchedule


@dataclass
class ModuloReservationTable:
    machine: MachineDescription
    ii: int
    # (resource instance, row) -> holder uid
    table: dict[tuple[str, int], int] = field(default_factory=dict)
    held: dict[int, list[tuple[str, int]]] = field(default_factory=dict)

    def _candidate_cells(
        self, instance: str, cycle: int, cycles: int
    ) -> list[tuple[str, int]]:
        return [(instance, (cycle + k) % self.ii) for k in range(cycles)]

    def _find_instances(
        self, op: Operation, cycle: int
    ) -> list[tuple[str, int]] | None:
        """Free cells for every resource the op needs, or None."""
        info = self.machine.opcode_info(op)
        chosen: list[tuple[str, int]] = []
        taken: set[tuple[str, int]] = set()
        for use in info.uses:
            if use.cycles > self.ii:
                return None  # cannot fit a reservation longer than II
            rc = self.machine.resource_class(use.resource)
            placed = False
            for instance in rc.instances():
                cells = self._candidate_cells(instance, cycle, use.cycles)
                if any(c in self.table or c in taken for c in cells):
                    continue
                chosen.extend(cells)
                taken.update(cells)
                placed = True
                break
            if not placed:
                return None
        return chosen

    def fits(self, op: Operation, cycle: int) -> bool:
        return self._find_instances(op, cycle) is not None

    def place(self, op: Operation, cycle: int) -> None:
        cells = self._find_instances(op, cycle)
        if cells is None:
            raise ValueError(f"no free resources for {op} at cycle {cycle}")
        for cell in cells:
            self.table[cell] = op.uid
        self.held[op.uid] = cells

    def conflicting_holders(self, op: Operation, cycle: int) -> set[int]:
        """Uids holding resources the op would need at ``cycle``, choosing
        for each resource class the alternative displacing the fewest
        holders."""
        info = self.machine.opcode_info(op)
        holders: set[int] = set()
        for use in info.uses:
            rc = self.machine.resource_class(use.resource)
            best: set[int] | None = None
            for instance in rc.instances():
                cells = self._candidate_cells(instance, cycle, use.cycles)
                current = {self.table[c] for c in cells if c in self.table}
                if best is None or len(current) < len(best):
                    best = current
                if not current:
                    break
            holders.update(best or set())
        return holders

    def place_evicting(self, op: Operation, cycle: int) -> set[int]:
        """Place the op at ``cycle``, evicting whatever stands in the way.
        Returns the evicted uids."""
        evicted = self.conflicting_holders(op, cycle)
        for uid in evicted:
            self.remove(uid)
        self.place(op, cycle)
        return evicted

    def remove(self, uid: int) -> None:
        for cell in self.held.pop(uid, []):
            if self.table.get(cell) == uid:
                del self.table[cell]


# ----------------------------------------------------------------------
# ASCII rendering (the --explain kernel visualizer)


def render_reservation_table(schedule: "ModuloSchedule") -> str:
    """Draw the steady-state kernel as a modulo reservation table: one row
    per resource instance, one column per kernel cycle, each occupied cell
    naming the holding operation (``mnemonic.uid``).  The ResMII
    bottleneck resource, when known, is marked ``*``.

    The table is reconstructed by replaying the schedule's placements in
    issue order — the same replay ``_check_schedule`` validates — so what
    is drawn is a feasible instance binding of the final kernel.
    """
    machine = schedule.machine
    ii = schedule.ii
    mrt = ModuloReservationTable(machine, ii)
    for op in sorted(schedule.loop.body, key=lambda o: schedule.times[o.uid]):
        mrt.place(op, schedule.times[op.uid])
    by_uid = {op.uid: op for op in schedule.loop.body}

    def label(uid: int) -> str:
        return f"{by_uid[uid].mnemonic()}.{uid}"

    bottleneck = getattr(schedule.res_mii, "bottleneck", None)
    instances = [
        inst for rc in machine.resources for inst in rc.instances()
    ]
    grid = {
        inst: [
            label(mrt.table[(inst, row)]) if (inst, row) in mrt.table else "."
            for row in range(ii)
        ]
        for inst in instances
    }
    name_w = max(len(inst) + 2 for inst in instances)
    col_w = max(
        [len(c) for cells in grid.values() for c in cells] + [len(str(ii - 1)) + 2]
    )
    lines = [
        f"reservation table of {schedule.loop.name}: II={ii}, "
        f"{schedule.stage_count} stages "
        f"(ResMII {int(schedule.res_mii)}, RecMII {int(schedule.rec_mii)})"
    ]
    header = " " * name_w + " ".join(
        f"c{row}".rjust(col_w) for row in range(ii)
    )
    lines.append(header)
    for inst in instances:
        mark = "*" if inst == bottleneck else " "
        row = f"{mark}{inst}".ljust(name_w) + " ".join(
            cell.rjust(col_w) for cell in grid[inst]
        )
        lines.append(row)
    if bottleneck is not None:
        lines.append(f"  (* = ResMII bottleneck resource: {bottleneck})")
    return "\n".join(lines)
