"""Modulo reservation table.

Resource conflicts in a modulo schedule recur every II cycles, so the
table has II rows; an operation issued at cycle ``t`` reserves its
resources in row ``t mod II``.  Multi-cycle reservations (non-pipelined
divides) occupy consecutive rows.  Each resource class offers its member
instances as alternatives; placement picks free instances and remembers
them so eviction can release exactly what an operation held.

:class:`ModuloReservationTable` keeps one Python int per resource
instance as a row bitmask: row ``r`` busy ⇔ bit ``r`` set.  A
reservation of ``c`` consecutive rows starting at ``start`` is the
rotated interval mask ``((1 << c) - 1) << start``, wrapped modulo II —
so a feasibility probe is one AND per instance instead of per-cell dict
lookups, and committing a placement is one OR.  Row ownership (needed
for eviction and rendering) rides in a per-instance ``{row: holder}``
dict that only placements touch.

:class:`DictModuloReservationTable` is the original per-(instance, row)
dict implementation, kept as the executable specification: the
hypothesis equivalence suite drives both tables through random
placement/eviction sequences and requires identical observable state.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.ir.operations import Operation
from repro.machine.machine import MachineDescription

if TYPE_CHECKING:  # avoid the scheduler <-> reservation import cycle
    from repro.pipeline.scheduler import ModuloSchedule

#: A probe's result: (start row, [(instance index, rows mask, busy cycles)]).
PlacementToken = tuple[int, list[tuple[int, int, int]]]


class ModuloReservationTable:
    """Bitmask-rows modulo reservation table.

    The op-level API (``fits`` / ``place`` / ``place_evicting`` /
    ``remove``) keys holders by ``op.uid``.  The spec-level API
    (``spec_of`` / ``probe_spec`` / ``commit`` / ...) lets the scheduler
    resolve an op's reservation spec once, reuse the probe's result as a
    placement token (no second scan on commit), and key holders by its
    own dense indices — holder keys are opaque ints either way.
    """

    __slots__ = (
        "machine",
        "ii",
        "full_mask",
        "busy",
        "owner",
        "held",
        "_names",
        "_mask_rows",
    )

    def __init__(self, machine: MachineDescription, ii: int):
        self.machine = machine
        self.ii = ii
        self.full_mask = (1 << ii) - 1
        names, _ = machine.instance_layout()
        self._names = names
        #: Per-instance row bitmask (bit r set ⇔ row r busy).
        self.busy = [0] * len(names)
        #: Per-instance {row: holder key} (eviction / rendering).
        self.owner: list[dict[int, int]] = [{} for _ in names]
        #: holder key -> [(instance index, rows mask, start, cycles)].
        self.held: dict[int, list[tuple[int, int, int, int]]] = {}
        #: cycles -> per-start-row interval mask, built on first use (the
        #: probe loop then does one list index instead of re-rotating).
        self._mask_rows: dict[int, list[int]] = {}

    def _masks_for(self, cycles: int) -> list[int]:
        ii = self.ii
        full = self.full_mask
        base = (1 << cycles) - 1
        row = []
        for start in range(ii):
            m = base << start
            row.append((m | (m >> ii)) & full)
        self._mask_rows[cycles] = row
        return row

    # ------------------------------------------------------------------
    # Spec-level fast path

    def spec_of(self, op: Operation) -> tuple[tuple[int, int, int], ...]:
        machine = self.machine
        return machine.reservation_spec(machine.opcode_info(op))

    def probe_spec(
        self, spec: tuple[tuple[int, int, int], ...], cycle: int
    ) -> PlacementToken | None:
        """Free instances for every use at ``cycle``, or None.  For each
        use the first free instance of its class wins (the paper's
        ALTERNATIVES order)."""
        ii = self.ii
        start = cycle % ii
        busy = self.busy
        mask_rows = self._mask_rows
        chosen: list[tuple[int, int, int]] = []
        taken: dict[int, int] = {}
        for first, count, cycles in spec:
            if cycles > ii:
                return None  # cannot fit a reservation longer than II
            row = mask_rows.get(cycles)
            if row is None:
                row = self._masks_for(cycles)
            mask = row[start]
            for i in range(first, first + count):
                if (busy[i] | taken.get(i, 0)) & mask == 0:
                    chosen.append((i, mask, cycles))
                    taken[i] = taken.get(i, 0) | mask
                    break
            else:
                return None
        return start, chosen

    def commit(self, key: int, token: PlacementToken) -> None:
        """Apply a probe's placement under holder ``key``."""
        ii = self.ii
        start, chosen = token
        cells = self.held[key] = []
        for i, mask, cycles in chosen:
            self.busy[i] |= mask
            rows = self.owner[i]
            for k in range(cycles):
                rows[(start + k) % ii] = key
            cells.append((i, mask, start, cycles))

    def conflicting_spec(
        self, spec: tuple[tuple[int, int, int], ...], cycle: int
    ) -> set[int]:
        """Holder keys standing in the way of a placement at ``cycle``,
        choosing for each use the alternative displacing the fewest
        holders."""
        ii = self.ii
        start = cycle % ii
        holders: set[int] = set()
        for first, count, cycles in spec:
            span = min(cycles, ii)
            best: set[int] | None = None
            for i in range(first, first + count):
                rows = self.owner[i]
                current: set[int] = set()
                if rows:
                    for k in range(span):
                        holder = rows.get((start + k) % ii)
                        if holder is not None:
                            current.add(holder)
                if best is None or len(current) < len(best):
                    best = current
                if not current:
                    break
            holders.update(best or set())
        return holders

    def remove(self, key: int) -> None:
        ii = self.ii
        for i, _, start, cycles in self.held.pop(key, []):
            rows = self.owner[i]
            clear = 0
            for k in range(cycles):
                row = (start + k) % ii
                if rows.get(row) == key:
                    del rows[row]
                    clear |= 1 << row
            self.busy[i] &= ~clear

    # ------------------------------------------------------------------
    # Op-level API (holders keyed by op.uid)

    def fits(self, op: Operation, cycle: int) -> bool:
        return self.probe_spec(self.spec_of(op), cycle) is not None

    def place(self, op: Operation, cycle: int) -> None:
        token = self.probe_spec(self.spec_of(op), cycle)
        if token is None:
            raise ValueError(f"no free resources for {op} at cycle {cycle}")
        self.commit(op.uid, token)

    def conflicting_holders(self, op: Operation, cycle: int) -> set[int]:
        """Uids holding resources the op would need at ``cycle``, choosing
        for each resource class the alternative displacing the fewest
        holders."""
        return self.conflicting_spec(self.spec_of(op), cycle)

    def place_evicting(self, op: Operation, cycle: int) -> set[int]:
        """Place the op at ``cycle``, evicting whatever stands in the way.
        Returns the evicted uids."""
        spec = self.spec_of(op)
        evicted = self.conflicting_spec(spec, cycle)
        for key in evicted:
            self.remove(key)
        token = self.probe_spec(spec, cycle)
        if token is None:
            raise ValueError(f"no free resources for {op} at cycle {cycle}")
        self.commit(op.uid, token)
        return evicted

    # ------------------------------------------------------------------

    def occupied_cells(self) -> dict[tuple[str, int], int]:
        """``(instance name, row) -> holder key`` for every busy cell —
        the rendering view the dict implementation kept as its primary
        state."""
        return {
            (self._names[i], row): key
            for i, rows in enumerate(self.owner)
            for row, key in rows.items()
        }


@dataclass
class DictModuloReservationTable:
    """The original per-(instance, row) dict table — the executable
    specification the bitmask table must match observably (same fits,
    same chosen instances, same eviction sets).  Kept for the hypothesis
    equivalence suite; not used on the compile path."""

    machine: MachineDescription
    ii: int
    # (resource instance, row) -> holder uid
    table: dict[tuple[str, int], int] = field(default_factory=dict)
    held: dict[int, list[tuple[str, int]]] = field(default_factory=dict)

    def _candidate_cells(
        self, instance: str, cycle: int, cycles: int
    ) -> list[tuple[str, int]]:
        return [(instance, (cycle + k) % self.ii) for k in range(cycles)]

    def _find_instances(
        self, op: Operation, cycle: int
    ) -> list[tuple[str, int]] | None:
        """Free cells for every resource the op needs, or None."""
        info = self.machine.opcode_info(op)
        chosen: list[tuple[str, int]] = []
        taken: set[tuple[str, int]] = set()
        for use in info.uses:
            if use.cycles > self.ii:
                return None  # cannot fit a reservation longer than II
            rc = self.machine.resource_class(use.resource)
            placed = False
            for instance in rc.instances():
                cells = self._candidate_cells(instance, cycle, use.cycles)
                if any(c in self.table or c in taken for c in cells):
                    continue
                chosen.extend(cells)
                taken.update(cells)
                placed = True
                break
            if not placed:
                return None
        return chosen

    def fits(self, op: Operation, cycle: int) -> bool:
        return self._find_instances(op, cycle) is not None

    def place(self, op: Operation, cycle: int) -> None:
        cells = self._find_instances(op, cycle)
        if cells is None:
            raise ValueError(f"no free resources for {op} at cycle {cycle}")
        for cell in cells:
            self.table[cell] = op.uid
        self.held[op.uid] = cells

    def conflicting_holders(self, op: Operation, cycle: int) -> set[int]:
        info = self.machine.opcode_info(op)
        holders: set[int] = set()
        for use in info.uses:
            rc = self.machine.resource_class(use.resource)
            best: set[int] | None = None
            for instance in rc.instances():
                cells = self._candidate_cells(instance, cycle, use.cycles)
                current = {self.table[c] for c in cells if c in self.table}
                if best is None or len(current) < len(best):
                    best = current
                if not current:
                    break
            holders.update(best or set())
        return holders

    def place_evicting(self, op: Operation, cycle: int) -> set[int]:
        evicted = self.conflicting_holders(op, cycle)
        for uid in evicted:
            self.remove(uid)
        self.place(op, cycle)
        return evicted

    def remove(self, uid: int) -> None:
        for cell in self.held.pop(uid, []):
            if self.table.get(cell) == uid:
                del self.table[cell]

    def occupied_cells(self) -> dict[tuple[str, int], int]:
        return dict(self.table)


# ----------------------------------------------------------------------
# ASCII rendering (the --explain kernel visualizer)


def render_reservation_table(schedule: "ModuloSchedule") -> str:
    """Draw the steady-state kernel as a modulo reservation table: one row
    per resource instance, one column per kernel cycle, each occupied cell
    naming the holding operation (``mnemonic.uid``).  The ResMII
    bottleneck resource, when known, is marked ``*``.

    The table is reconstructed by replaying the schedule's placements in
    issue order — the same replay ``_check_schedule`` validates — so what
    is drawn is a feasible instance binding of the final kernel.
    """
    machine = schedule.machine
    ii = schedule.ii
    mrt = ModuloReservationTable(machine, ii)
    for op in sorted(schedule.loop.body, key=lambda o: schedule.times[o.uid]):
        mrt.place(op, schedule.times[op.uid])
    by_uid = {op.uid: op for op in schedule.loop.body}
    cells = mrt.occupied_cells()

    def label(uid: int) -> str:
        return f"{by_uid[uid].mnemonic()}.{uid}"

    bottleneck = getattr(schedule.res_mii, "bottleneck", None)
    instances = [
        inst for rc in machine.resources for inst in rc.instances()
    ]
    grid = {
        inst: [
            label(cells[(inst, row)]) if (inst, row) in cells else "."
            for row in range(ii)
        ]
        for inst in instances
    }
    name_w = max(len(inst) + 2 for inst in instances)
    col_w = max(
        [len(c) for cells_ in grid.values() for c in cells_] + [len(str(ii - 1)) + 2]
    )
    lines = [
        f"reservation table of {schedule.loop.name}: II={ii}, "
        f"{schedule.stage_count} stages "
        f"(ResMII {int(schedule.res_mii)}, RecMII {int(schedule.rec_mii)})"
    ]
    header = " " * name_w + " ".join(
        f"c{row}".rjust(col_w) for row in range(ii)
    )
    lines.append(header)
    for inst in instances:
        mark = "*" if inst == bottleneck else " "
        row = f"{mark}{inst}".ljust(name_w) + " ".join(
            cell.rjust(col_w) for cell in grid[inst]
        )
        lines.append(row)
    if bottleneck is not None:
        lines.append(f"  (* = ResMII bottleneck resource: {bottleneck})")
    return "\n".join(lines)
