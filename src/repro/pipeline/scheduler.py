"""Iterative modulo scheduling (Rau, HPL-94-115).

For each candidate II starting at MII = max(ResMII, RecMII), operations
are scheduled highest-priority-first (priority = height in the
II-weighted dependence graph).  Each operation is placed at the earliest
start consistent with its scheduled predecessors, scanning II consecutive
cycles for a resource-feasible slot; when none exists the operation is
force-placed, evicting resource conflicts and unscheduling dependence
violators.  A budget bounds the total number of placements; exhausting it
moves on to II+1.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass

from repro.dependence.graph import DependenceGraph
from repro.ir.loop import Loop
from repro.ir.operations import Operation
from repro.machine.machine import MachineDescription
from repro.observability.recorder import Recorder, active_recorder, maybe_span
from repro.dependence.graph import DepEdge
from repro.pipeline.mii import RecMII, ResMII, edge_delays, minimum_ii
from repro.pipeline.reservation import ModuloReservationTable


class SchedulingError(Exception):
    """No modulo schedule found within the II / budget limits."""


@dataclass
class ModuloSchedule:
    """A modulo schedule for one loop body."""

    loop: Loop
    machine: MachineDescription
    ii: int
    times: dict[int, int]
    res_mii: int
    rec_mii: int
    attempts: int

    @property
    def mii(self) -> int:
        return max(self.res_mii, self.rec_mii)

    @property
    def stage_count(self) -> int:
        if not self.times:
            return 1
        return max(t // self.ii for t in self.times.values()) + 1

    def stage_of(self, uid: int) -> int:
        return self.times[uid] // self.ii

    def kernel_rows(self) -> list[list[tuple[Operation, int]]]:
        """Operations by kernel row: ``rows[c]`` lists (op, stage) pairs
        issued at kernel cycle ``c``."""
        rows: list[list[tuple[Operation, int]]] = [[] for _ in range(self.ii)]
        by_uid = {op.uid: op for op in self.loop.body}
        for uid, t in sorted(self.times.items(), key=lambda kv: kv[1]):
            rows[t % self.ii].append((by_uid[uid], t // self.ii))
        return rows

    def ii_per_original_iteration(self) -> float:
        return self.ii / self.loop.increment


def _heights(
    loop: Loop,
    graph: DependenceGraph,
    machine: MachineDescription,
    ii: int,
    delays: dict[DepEdge, int] | None = None,
) -> dict[int, int]:
    """Longest path from each operation to any sink under II-adjusted
    weights — the scheduling priority.  Converges because MII rules out
    positive cycles."""
    if delays is None:
        delays = edge_delays(graph, machine)
    height = {op.uid: 0 for op in loop.body}
    relaxations = 0
    # Relax to fixpoint (bounded by |V| rounds at a feasible II).
    for _ in range(len(loop.body)):
        changed = False
        for edge in graph.edges:
            w = delays[edge] - ii * edge.distance
            candidate = height[edge.dst] + w
            if candidate > height[edge.src]:
                height[edge.src] = candidate
                changed = True
                relaxations += 1
        if not changed:
            break
    rec = active_recorder()
    if rec is not None:
        rec.count("sched.height_relaxations", relaxations)
    return height


def _try_schedule(
    loop: Loop,
    graph: DependenceGraph,
    machine: MachineDescription,
    ii: int,
    budget: int,
    jitter_seed: int | None = None,
    rec: Recorder | None = None,
    delays: dict[DepEdge, int] | None = None,
    base_height: dict[int, int] | None = None,
    body_index: dict[int, int] | None = None,
    by_uid: dict[int, Operation] | None = None,
) -> dict[int, int] | None:
    # II-invariant state (delays, body order, uid map) and the per-II
    # un-jittered heights are computed by the caller once and shared by
    # the four restart variants; standalone calls fall back to computing
    # them here.
    if delays is None:
        delays = edge_delays(graph, machine)
    if base_height is None:
        base_height = _heights(loop, graph, machine, ii, delays)
    height: dict[int, float] = base_height
    rng = None
    if jitter_seed is not None:
        # Deterministic perturbation: tight kernels (every issue slot
        # full) sometimes defeat the pure height order and earliest-fit
        # placement, and a different exploration order finds the
        # schedule.  Rau's iterative scheme is a heuristic; randomized
        # restarts are the standard remedy.
        import random

        rng = random.Random(jitter_seed)
        height = dict(base_height)
        for uid in height:
            height[uid] += rng.random() * 2.0
    if body_index is None:
        body_index = {op.uid: i for i, op in enumerate(loop.body)}
    if by_uid is None:
        by_uid = {op.uid: op for op in loop.body}

    times: dict[int, int] = {}
    last_time: dict[int, int] = {}
    mrt = ModuloReservationTable(machine, ii)
    placements = 0
    evictions = 0

    # Max-heap on (height, reverse body order).
    ready = [(-height[op.uid], body_index[op.uid], op.uid) for op in loop.body]
    heapq.heapify(ready)
    in_queue = {op.uid for op in loop.body}

    def push(uid: int) -> None:
        if uid not in in_queue:
            heapq.heappush(ready, (-height[uid], body_index[uid], uid))
            in_queue.add(uid)

    while ready:
        if budget <= 0:
            if rec is not None:
                rec.count("sched.budget_exhausted")
                rec.count("sched.placements", placements)
                rec.count("sched.evictions", evictions)
                rec.event(
                    "sched.budget_exhausted",
                    loop=loop.name,
                    ii=ii,
                    variant=jitter_seed,
                    placements=placements,
                    evictions=evictions,
                )
            return None
        budget -= 1
        placements += 1
        _, _, uid = heapq.heappop(ready)
        in_queue.discard(uid)
        op = by_uid[uid]

        estart = 0
        for edge in graph.predecessors(uid):
            if edge.src == uid or edge.src not in times:
                continue
            bound = times[edge.src] + delays[edge] - ii * edge.distance
            estart = max(estart, bound)

        placed_at: int | None = None
        if rng is None:
            # Earliest fit: stop scanning at the first feasible slot.
            for t in range(estart, estart + ii):
                if mrt.fits(op, t):
                    placed_at = t
                    break
        else:
            # Jittered attempts sometimes pick a later fitting cycle,
            # which reaches schedules where an issue row must be left
            # open for a not-yet-scheduled operation — they need the
            # full fitting-slot list.
            fitting = [t for t in range(estart, estart + ii) if mrt.fits(op, t)]
            if fitting:
                placed_at = fitting[0]
                if len(fitting) > 1 and rng.random() < 0.5:
                    placed_at = rng.choice(fitting)
        if placed_at is not None:
            mrt.place(op, placed_at)
        if placed_at is None:
            # Force placement, evicting conflicts (Rau's scheme: never
            # retry the exact same slot for this op).
            t = estart
            if uid in last_time and t <= last_time[uid]:
                t = last_time[uid] + 1
            for evicted in mrt.place_evicting(op, t):
                del times[evicted]
                push(evicted)
                evictions += 1
            placed_at = t

        times[uid] = placed_at
        last_time[uid] = placed_at

        # Unschedule any scheduled neighbor whose dependence is now violated.
        for edge in graph.successors(uid):
            if edge.dst == uid or edge.dst not in times:
                continue
            need = placed_at + delays[edge] - ii * edge.distance
            if times[edge.dst] < need:
                mrt.remove(edge.dst)
                del times[edge.dst]
                push(edge.dst)
                evictions += 1
        for edge in graph.predecessors(uid):
            if edge.src == uid or edge.src not in times:
                continue
            need = times[edge.src] + delays[edge] - ii * edge.distance
            if placed_at < need:
                mrt.remove(edge.src)
                del times[edge.src]
                push(edge.src)
                evictions += 1

    if rec is not None:
        rec.count("sched.placements", placements)
        rec.count("sched.evictions", evictions)
    return times if len(times) == len(loop.body) else None


def modulo_schedule(
    loop: Loop,
    graph: DependenceGraph,
    machine: MachineDescription,
    budget_ratio: int = 10,
    max_ii_factor: int = 4,
    min_ii: int | None = None,
) -> ModuloSchedule:
    """Schedule a loop body, trying successive IIs from MII upward.

    ``min_ii`` lets callers impose an external lower bound (e.g. a retry
    after register allocation failed at the previous II).
    """
    if not loop.body:
        raise SchedulingError(f"loop {loop.name!r} has an empty body")
    recorder = active_recorder()
    with maybe_span(recorder, "modulo_schedule", loop=loop.name):
        delays = edge_delays(graph, machine)
        mii, res, rec = minimum_ii(loop, graph, machine, delays)
        start = max(mii, min_ii or 1)
        budget = max(budget_ratio * len(loop.body), 40)
        max_ii = max(start * max_ii_factor, start + 32)

        if recorder is not None:
            _remark_mii_bound(recorder, loop, graph, res, rec, start, min_ii)

        # II-invariant scheduling state, shared by every II probe and
        # restart variant.
        body_index = {op.uid: i for i, op in enumerate(loop.body)}
        by_uid = {op.uid: op for op in loop.body}

        attempts = 0
        for ii in range(start, max_ii + 1):
            base_height = _heights(loop, graph, machine, ii, delays)
            for variant in (None, 1, 2, 3):
                attempts += 1
                times = _try_schedule(
                    loop,
                    graph,
                    machine,
                    ii,
                    budget,
                    variant,
                    recorder,
                    delays=delays,
                    base_height=base_height,
                    body_index=body_index,
                    by_uid=by_uid,
                )
                if times is None and variant == 3 and recorder is not None:
                    # All restart variants failed at this II: record what
                    # blocked it (at the bound it is the bound itself;
                    # above it, the placement budget).
                    recorder.remark(
                        "scheduler",
                        loop.name,
                        "ii-rejected",
                        f"II={ii} infeasible within placement budget "
                        f"{budget} (4 restart variants)",
                        ii=ii,
                        budget=budget,
                        at_bound=ii == mii,
                    )
                if times is not None:
                    _check_schedule(loop, graph, machine, ii, times, delays)
                    if recorder is not None:
                        recorder.count("sched.loops_scheduled")
                        recorder.count("sched.ii_attempts", attempts)
                        recorder.observe("sched.ii_over_mii", ii - mii)
                        recorder.event(
                            "sched.scheduled",
                            loop=loop.name,
                            ii=ii,
                            res_mii=res,
                            rec_mii=rec,
                            attempts=attempts,
                            variant=variant,
                        )
                        slack = ii - mii
                        recorder.remark(
                            "scheduler",
                            loop.name,
                            "scheduled",
                            f"II={ii} achieved"
                            + (
                                " at the MII bound"
                                if slack == 0
                                else f", {slack} above MII={mii}"
                            )
                            + f" ({attempts} attempts)",
                            ii=ii,
                            mii=mii,
                            res_mii=res,
                            rec_mii=rec,
                            attempts=attempts,
                            variant=variant,
                        )
                    return ModuloSchedule(
                        loop=loop,
                        machine=machine,
                        ii=ii,
                        times=times,
                        res_mii=res,
                        rec_mii=rec,
                        attempts=attempts,
                    )
        if recorder is not None:
            recorder.count("sched.ii_attempts", attempts)
            recorder.event(
                "sched.failed",
                loop=loop.name,
                start_ii=start,
                max_ii=max_ii,
                attempts=attempts,
            )
        raise SchedulingError(
            f"no schedule for {loop.name!r} with II in [{start}, {max_ii}]"
        )


def _remark_mii_bound(
    recorder: Recorder,
    loop: Loop,
    graph: DependenceGraph,
    res: ResMII,
    rec: RecMII,
    start: int,
    min_ii: int | None,
) -> None:
    """Remark on which bound pins the starting II: the bottleneck resource
    (ResMII), the critical recurrence cycle (RecMII), or an external floor
    (register-pressure retry)."""
    if min_ii is not None and start == min_ii and min_ii > max(res, rec):
        recorder.remark(
            "scheduler",
            loop.name,
            "external-floor",
            f"II search starts at {start}, imposed by the caller "
            f"(register-pressure retry), above MII={max(res, rec)}",
            start=start,
            res_mii=int(res),
            rec_mii=int(rec),
        )
        return
    data = {
        "res_mii": int(res),
        "rec_mii": int(rec),
        "bottleneck": res.bottleneck,
        "pressure": dict(res.pressure),
        "cycle": list(rec.cycle),
        "cycle_delay": rec.cycle_delay,
        "cycle_distance": rec.cycle_distance,
    }
    if res >= rec:
        recorder.remark(
            "scheduler",
            loop.name,
            "res-bound",
            f"MII={max(res, rec)} is resource-bound: {res.bottleneck} "
            f"carries {res.pressure.get(res.bottleneck, 0)} busy cycles "
            f"(RecMII={int(rec)})",
            **data,
        )
    else:
        recorder.remark(
            "scheduler",
            loop.name,
            "rec-bound",
            f"MII={int(rec)} is recurrence-bound: cycle "
            f"{rec.describe_cycle(graph)} carries delay {rec.cycle_delay} "
            f"over distance {rec.cycle_distance} (ResMII={int(res)})",
            **data,
        )


def _check_schedule(
    loop: Loop,
    graph: DependenceGraph,
    machine: MachineDescription,
    ii: int,
    times: dict[int, int],
    delays: dict[DepEdge, int] | None = None,
) -> None:
    """Validate dependence and resource feasibility of a finished schedule."""
    if delays is None:
        delays = edge_delays(graph, machine)
    for edge in graph.edges:
        lhs = times[edge.dst] + ii * edge.distance
        rhs = times[edge.src] + delays[edge]
        if lhs < rhs:
            raise SchedulingError(
                f"schedule violates {edge} in {loop.name!r} (ii={ii})"
            )
    mrt = ModuloReservationTable(machine, ii)
    for op in sorted(loop.body, key=lambda o: times[o.uid]):
        if not mrt.fits(op, times[op.uid]):
            raise SchedulingError(
                f"resource overflow at cycle {times[op.uid]} for {op}"
            )
        mrt.place(op, times[op.uid])
