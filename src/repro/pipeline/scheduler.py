"""Iterative modulo scheduling (Rau, HPL-94-115).

For each candidate II starting at MII = max(ResMII, RecMII), operations
are scheduled highest-priority-first (priority = height in the
II-weighted dependence graph).  Each operation is placed at the earliest
start consistent with its scheduled predecessors, scanning II consecutive
cycles for a resource-feasible slot; when none exists the operation is
force-placed, evicting resource conflicts and unscheduling dependence
violators.  A budget bounds the total number of placements; exhausting it
moves on to II+1.

The inner loop runs on flat state: :class:`_SchedulerState` remaps every
operation to a dense index once per loop (extending the graph's
:class:`~repro.pipeline.mii.GraphArrays` numbering with any body ops the
graph omits), so scheduled times, last-placement memory, and the ready
set are plain lists; dependence walks follow edge-index adjacency into
the shared edge arrays; and resource placement goes through the
reservation table's probe/commit tokens — one bitmask scan per candidate
cycle, with the successful probe reused as the placement instead of a
second scan.  The schedule produced is bit-identical to the original
dict implementation's, including ``times`` dict insertion order (the
placement order list is replayed last-occurrence-first) and the jitter
variants' RNG draw sequence (perturbations are applied in body order,
choices drawn per fitting-slot count).
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass

from repro.dependence.graph import DependenceGraph
from repro.ir.loop import Loop
from repro.ir.operations import Operation
from repro.machine.machine import MachineDescription
from repro.observability.recorder import Recorder, active_recorder, maybe_span
from repro.dependence.graph import DepEdge
from repro.pipeline.mii import GraphArrays, RecMII, ResMII, edge_delays, minimum_ii
from repro.pipeline.reservation import ModuloReservationTable


class SchedulingError(Exception):
    """No modulo schedule found within the II / budget limits."""


@dataclass
class ModuloSchedule:
    """A modulo schedule for one loop body."""

    loop: Loop
    machine: MachineDescription
    ii: int
    times: dict[int, int]
    res_mii: int
    rec_mii: int
    attempts: int

    @property
    def mii(self) -> int:
        return max(self.res_mii, self.rec_mii)

    @property
    def stage_count(self) -> int:
        if not self.times:
            return 1
        return max(t // self.ii for t in self.times.values()) + 1

    def stage_of(self, uid: int) -> int:
        return self.times[uid] // self.ii

    def kernel_rows(self) -> list[list[tuple[Operation, int]]]:
        """Operations by kernel row: ``rows[c]`` lists (op, stage) pairs
        issued at kernel cycle ``c``."""
        rows: list[list[tuple[Operation, int]]] = [[] for _ in range(self.ii)]
        by_uid = {op.uid: op for op in self.loop.body}
        for uid, t in sorted(self.times.items(), key=lambda kv: kv[1]):
            rows[t % self.ii].append((by_uid[uid], t // self.ii))
        return rows

    def ii_per_original_iteration(self) -> float:
        return self.ii / self.loop.increment


class _SchedulerState:
    """II-invariant flat scheduling state for one (loop, graph, machine).

    Shared by every II probe and restart variant of a loop's schedule
    search: the dense uid numbering (graph nodes first, then any body ops
    the graph omits), per-edge adjacency as edge-index lists in
    ``graph.edges`` order (matching the graph's own adjacency order), and
    each body op's resolved reservation spec.
    """

    __slots__ = (
        "loop",
        "graph",
        "machine",
        "arrays",
        "n",
        "uids",
        "index",
        "body_idx",
        "pos",
        "pred_e",
        "succ_e",
        "specs",
    )

    def __init__(
        self,
        loop: Loop,
        graph: DependenceGraph,
        machine: MachineDescription,
        delays: dict[DepEdge, int] | None = None,
    ):
        self.loop = loop
        self.graph = graph
        self.machine = machine
        arrays = GraphArrays(graph, machine, delays)
        self.arrays = arrays
        uids = list(arrays.uids)
        index = dict(arrays.index)
        for op in loop.body:
            if op.uid not in index:
                index[op.uid] = len(uids)
                uids.append(op.uid)
        self.uids = uids
        self.index = index
        self.n = len(uids)
        self.body_idx = [index[op.uid] for op in loop.body]
        pos = [-1] * self.n
        for p, i in enumerate(self.body_idx):
            pos[i] = p
        self.pos = pos
        pred_e: list[list[int]] = [[] for _ in range(self.n)]
        succ_e: list[list[int]] = [[] for _ in range(self.n)]
        for j in range(len(arrays.edges)):
            succ_e[arrays.esrc[j]].append(j)
            pred_e[arrays.edst[j]].append(j)
        self.pred_e = pred_e
        self.succ_e = succ_e
        specs: list[tuple[tuple[int, int, int], ...] | None] = [None] * self.n
        for op, i in zip(loop.body, self.body_idx):
            specs[i] = machine.reservation_spec(machine.opcode_info(op))
        self.specs = specs


def _heights_flat(state: _SchedulerState, ii: int) -> list[int]:
    """Longest path from each operation to any sink under II-adjusted
    weights — the scheduling priority, as a dense-index list.  Converges
    because MII rules out positive cycles."""
    arrays = state.arrays
    height = [0] * state.n
    weights = [
        (s, d, dl - ii * di)
        for s, d, dl, di in zip(
            arrays.esrc, arrays.edst, arrays.delay, arrays.edist
        )
    ]
    relaxations = 0
    # Relax to fixpoint (bounded by |V| rounds at a feasible II).
    for _ in range(len(state.loop.body)):
        changed = False
        for s, d, w in weights:
            candidate = height[d] + w
            if candidate > height[s]:
                height[s] = candidate
                changed = True
                relaxations += 1
        if not changed:
            break
    rec = active_recorder()
    if rec is not None:
        rec.count("sched.height_relaxations", relaxations)
    return height


def _heights(
    loop: Loop,
    graph: DependenceGraph,
    machine: MachineDescription,
    ii: int,
    delays: dict[DepEdge, int] | None = None,
    state: _SchedulerState | None = None,
) -> dict[int, int]:
    """Dict-shaped view of :func:`_heights_flat` (the original public
    contract, kept for the oracle and standalone callers)."""
    if state is None:
        state = _SchedulerState(loop, graph, machine, delays)
    height = _heights_flat(state, ii)
    index = state.index
    return {op.uid: height[index[op.uid]] for op in loop.body}


def _try_schedule(
    loop: Loop,
    graph: DependenceGraph,
    machine: MachineDescription,
    ii: int,
    budget: int,
    jitter_seed: int | None = None,
    rec: Recorder | None = None,
    delays: dict[DepEdge, int] | None = None,
    base_height: list[int] | dict[int, int] | None = None,
    body_index: dict[int, int] | None = None,
    by_uid: dict[int, Operation] | None = None,
    state: _SchedulerState | None = None,
) -> dict[int, int] | None:
    # The II-invariant state and the per-II un-jittered heights are
    # computed by the caller once and shared by the four restart
    # variants; standalone calls fall back to computing them here.
    # ``body_index``/``by_uid`` are subsumed by ``state`` and accepted
    # for signature compatibility.
    del body_index, by_uid
    if state is None:
        state = _SchedulerState(loop, graph, machine, delays)
    if base_height is None:
        base = _heights_flat(state, ii)
    elif isinstance(base_height, dict):
        base = [0] * state.n
        for uid, h in base_height.items():
            base[state.index[uid]] = h
    else:
        base = base_height

    height: list[float] = base
    rng = None
    if jitter_seed is not None:
        # Deterministic perturbation: tight kernels (every issue slot
        # full) sometimes defeat the pure height order and earliest-fit
        # placement, and a different exploration order finds the
        # schedule.  Rau's iterative scheme is a heuristic; randomized
        # restarts are the standard remedy.  Draws happen in body order.
        import random

        rng = random.Random(jitter_seed)
        height = list(base)
        for i in state.body_idx:
            height[i] += rng.random() * 2.0

    arrays = state.arrays
    esrc, edst = arrays.esrc, arrays.edst
    delay, edist = arrays.delay, arrays.edist
    pred_e, succ_e = state.pred_e, state.succ_e
    specs = state.specs
    pos = state.pos
    n = state.n

    times = [-1] * n  # -1 = unscheduled
    last_time: list[int | None] = [None] * n
    order: list[int] = []  # placement order, for dict-order replay
    mrt = ModuloReservationTable(machine, ii)
    probe = mrt.probe_spec
    placements = 0
    evictions = 0

    # Max-heap on (height, reverse body order).
    ready = [(-height[i], pos[i], i) for i in state.body_idx]
    heapq.heapify(ready)
    in_queue = bytearray(n)
    for i in state.body_idx:
        in_queue[i] = 1

    def push(i: int) -> None:
        if not in_queue[i]:
            heapq.heappush(ready, (-height[i], pos[i], i))
            in_queue[i] = 1

    while ready:
        if budget <= 0:
            if rec is not None:
                rec.count("sched.budget_exhausted")
                rec.count("sched.placements", placements)
                rec.count("sched.evictions", evictions)
                rec.event(
                    "sched.budget_exhausted",
                    loop=loop.name,
                    ii=ii,
                    variant=jitter_seed,
                    placements=placements,
                    evictions=evictions,
                )
            return None
        budget -= 1
        placements += 1
        _, _, i = heapq.heappop(ready)
        in_queue[i] = 0

        estart = 0
        for j in pred_e[i]:
            s = esrc[j]
            if s == i:
                continue
            ts = times[s]
            if ts < 0:
                continue
            bound = ts + delay[j] - ii * edist[j]
            if bound > estart:
                estart = bound

        spec = specs[i]
        token = None
        placed_at = -1
        if rng is None:
            # Earliest fit: stop scanning at the first feasible slot, and
            # keep its probe token as the placement.
            for t in range(estart, estart + ii):
                token = probe(spec, t)
                if token is not None:
                    placed_at = t
                    break
        else:
            # Jittered attempts sometimes pick a later fitting cycle,
            # which reaches schedules where an issue row must be left
            # open for a not-yet-scheduled operation — they need the
            # full fitting-slot list.
            fitting: list[int] = []
            tokens = []
            for t in range(estart, estart + ii):
                tk = probe(spec, t)
                if tk is not None:
                    fitting.append(t)
                    tokens.append(tk)
            if fitting:
                pick = 0
                if len(fitting) > 1 and rng.random() < 0.5:
                    pick = rng.choice(range(len(fitting)))
                placed_at = fitting[pick]
                token = tokens[pick]
        if token is not None:
            mrt.commit(i, token)
        else:
            # Force placement, evicting conflicts (Rau's scheme: never
            # retry the exact same slot for this op).
            t = estart
            lt = last_time[i]
            if lt is not None and t <= lt:
                t = lt + 1
            evicted = mrt.conflicting_spec(spec, t)
            for v in evicted:
                mrt.remove(v)
            token = probe(spec, t)
            if token is None:
                raise ValueError(f"no free resources at cycle {t}")
            mrt.commit(i, token)
            for v in evicted:
                times[v] = -1
                push(v)
                evictions += 1
            placed_at = t

        times[i] = placed_at
        last_time[i] = placed_at
        order.append(i)

        # Unschedule any scheduled neighbor whose dependence is now violated.
        for j in succ_e[i]:
            d = edst[j]
            if d == i:
                continue
            td = times[d]
            if td < 0:
                continue
            if td < placed_at + delay[j] - ii * edist[j]:
                mrt.remove(d)
                times[d] = -1
                push(d)
                evictions += 1
        for j in pred_e[i]:
            s = esrc[j]
            if s == i:
                continue
            ts = times[s]
            if ts < 0:
                continue
            if placed_at < ts + delay[j] - ii * edist[j]:
                mrt.remove(s)
                times[s] = -1
                push(s)
                evictions += 1

    if rec is not None:
        rec.count("sched.placements", placements)
        rec.count("sched.evictions", evictions)
    if sum(1 for i in state.body_idx if times[i] >= 0) != len(state.body_idx):
        return None
    # Replay placement order so the returned dict's insertion order is
    # the one the incremental build produced (each placement re-inserted
    # its key at the end; only the last placement of a key survives).
    uids = state.uids
    last_seen: list[int] = []
    seen = bytearray(n)
    for i in reversed(order):
        if times[i] >= 0 and not seen[i]:
            seen[i] = 1
            last_seen.append(i)
    return {uids[i]: times[i] for i in reversed(last_seen)}


def modulo_schedule(
    loop: Loop,
    graph: DependenceGraph,
    machine: MachineDescription,
    budget_ratio: int = 10,
    max_ii_factor: int = 4,
    min_ii: int | None = None,
) -> ModuloSchedule:
    """Schedule a loop body, trying successive IIs from MII upward.

    ``min_ii`` lets callers impose an external lower bound (e.g. a retry
    after register allocation failed at the previous II).
    """
    if not loop.body:
        raise SchedulingError(f"loop {loop.name!r} has an empty body")
    recorder = active_recorder()
    with maybe_span(recorder, "modulo_schedule", loop=loop.name):
        # II-invariant scheduling state (dense numbering, edge arrays,
        # adjacency, reservation specs), shared by every II probe and
        # restart variant — and by the MII bound computation.
        state = _SchedulerState(loop, graph, machine)
        mii, res, rec = minimum_ii(loop, graph, machine, arrays=state.arrays)
        start = max(mii, min_ii or 1)
        budget = max(budget_ratio * len(loop.body), 40)
        max_ii = max(start * max_ii_factor, start + 32)

        if recorder is not None:
            _remark_mii_bound(recorder, loop, graph, res, rec, start, min_ii)

        attempts = 0
        for ii in range(start, max_ii + 1):
            base_height = _heights_flat(state, ii)
            for variant in (None, 1, 2, 3):
                attempts += 1
                times = _try_schedule(
                    loop,
                    graph,
                    machine,
                    ii,
                    budget,
                    variant,
                    recorder,
                    base_height=base_height,
                    state=state,
                )
                if times is None and variant == 3 and recorder is not None:
                    # All restart variants failed at this II: record what
                    # blocked it (at the bound it is the bound itself;
                    # above it, the placement budget).
                    recorder.remark(
                        "scheduler",
                        loop.name,
                        "ii-rejected",
                        f"II={ii} infeasible within placement budget "
                        f"{budget} (4 restart variants)",
                        ii=ii,
                        budget=budget,
                        at_bound=ii == mii,
                    )
                if times is not None:
                    delays = dict(zip(state.arrays.edges, state.arrays.delay))
                    _check_schedule(loop, graph, machine, ii, times, delays)
                    if recorder is not None:
                        recorder.count("sched.loops_scheduled")
                        recorder.count("sched.ii_attempts", attempts)
                        recorder.observe("sched.ii_over_mii", ii - mii)
                        recorder.event(
                            "sched.scheduled",
                            loop=loop.name,
                            ii=ii,
                            res_mii=res,
                            rec_mii=rec,
                            attempts=attempts,
                            variant=variant,
                        )
                        slack = ii - mii
                        recorder.remark(
                            "scheduler",
                            loop.name,
                            "scheduled",
                            f"II={ii} achieved"
                            + (
                                " at the MII bound"
                                if slack == 0
                                else f", {slack} above MII={mii}"
                            )
                            + f" ({attempts} attempts)",
                            ii=ii,
                            mii=mii,
                            res_mii=res,
                            rec_mii=rec,
                            attempts=attempts,
                            variant=variant,
                        )
                    return ModuloSchedule(
                        loop=loop,
                        machine=machine,
                        ii=ii,
                        times=times,
                        res_mii=res,
                        rec_mii=rec,
                        attempts=attempts,
                    )
        if recorder is not None:
            recorder.count("sched.ii_attempts", attempts)
            recorder.event(
                "sched.failed",
                loop=loop.name,
                start_ii=start,
                max_ii=max_ii,
                attempts=attempts,
            )
        raise SchedulingError(
            f"no schedule for {loop.name!r} with II in [{start}, {max_ii}]"
        )


def _remark_mii_bound(
    recorder: Recorder,
    loop: Loop,
    graph: DependenceGraph,
    res: ResMII,
    rec: RecMII,
    start: int,
    min_ii: int | None,
) -> None:
    """Remark on which bound pins the starting II: the bottleneck resource
    (ResMII), the critical recurrence cycle (RecMII), or an external floor
    (register-pressure retry)."""
    if min_ii is not None and start == min_ii and min_ii > max(res, rec):
        recorder.remark(
            "scheduler",
            loop.name,
            "external-floor",
            f"II search starts at {start}, imposed by the caller "
            f"(register-pressure retry), above MII={max(res, rec)}",
            start=start,
            res_mii=int(res),
            rec_mii=int(rec),
        )
        return
    data = {
        "res_mii": int(res),
        "rec_mii": int(rec),
        "bottleneck": res.bottleneck,
        "pressure": dict(res.pressure),
        "cycle": list(rec.cycle),
        "cycle_delay": rec.cycle_delay,
        "cycle_distance": rec.cycle_distance,
    }
    if res >= rec:
        recorder.remark(
            "scheduler",
            loop.name,
            "res-bound",
            f"MII={max(res, rec)} is resource-bound: {res.bottleneck} "
            f"carries {res.pressure.get(res.bottleneck, 0)} busy cycles "
            f"(RecMII={int(rec)})",
            **data,
        )
    else:
        recorder.remark(
            "scheduler",
            loop.name,
            "rec-bound",
            f"MII={int(rec)} is recurrence-bound: cycle "
            f"{rec.describe_cycle(graph)} carries delay {rec.cycle_delay} "
            f"over distance {rec.cycle_distance} (ResMII={int(res)})",
            **data,
        )


def _check_schedule(
    loop: Loop,
    graph: DependenceGraph,
    machine: MachineDescription,
    ii: int,
    times: dict[int, int],
    delays: dict[DepEdge, int] | None = None,
) -> None:
    """Validate dependence and resource feasibility of a finished schedule."""
    if delays is None:
        delays = edge_delays(graph, machine)
    for edge in graph.edges:
        lhs = times[edge.dst] + ii * edge.distance
        rhs = times[edge.src] + delays[edge]
        if lhs < rhs:
            raise SchedulingError(
                f"schedule violates {edge} in {loop.name!r} (ii={ii})"
            )
    mrt = ModuloReservationTable(machine, ii)
    for op in sorted(loop.body, key=lambda o: times[o.uid]):
        if not mrt.fits(op, times[op.uid]):
            raise SchedulingError(
                f"resource overflow at cycle {times[op.uid]} for {op}"
            )
        mrt.place(op, times[op.uid])
