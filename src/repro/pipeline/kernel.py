"""Rendering of software-pipeline code: kernel, prologue, epilogue.

The modulo schedule is a kernel plus a stage count; the prologue and
epilogue are the partially filled copies of the kernel that ramp the
pipeline up and down.  These helpers render the schedules the way the
paper's Figure 1 draws them — one row per cycle, one column per issue
slot, each operation tagged with the original iteration it belongs to.
"""

from __future__ import annotations

from repro.pipeline.scheduler import ModuloSchedule


def kernel_listing(schedule: ModuloSchedule) -> str:
    """The steady-state kernel, one row per cycle with stage tags."""
    lines = [
        f"kernel of {schedule.loop.name}: II={schedule.ii}, "
        f"{schedule.stage_count} stages "
        f"(ResMII {schedule.res_mii}, RecMII {schedule.rec_mii})"
    ]
    for cycle, row in enumerate(schedule.kernel_rows()):
        ops = ", ".join(f"{op.mnemonic()}[s{stage}]" for op, stage in row)
        lines.append(f"  cycle {cycle}: {ops if ops else '(empty)'}")
    return "\n".join(lines)


def pipeline_listing(schedule: ModuloSchedule, iterations: int) -> str:
    """The unrolled pipeline for a small iteration count: every issue in
    absolute time, annotated with its iteration index.  The ramp-up rows
    (not all iterations present) are the prologue; the ramp-down rows are
    the epilogue."""
    ii = schedule.ii
    by_cycle: dict[int, list[str]] = {}
    for op in schedule.loop.body:
        base = schedule.times[op.uid]
        for j in range(iterations):
            by_cycle.setdefault(base + j * ii, []).append(
                f"{op.mnemonic()}({j})"
            )
    if not by_cycle:
        return "(empty pipeline)"
    last = max(by_cycle)
    steady_from = (schedule.stage_count - 1) * ii
    steady_to = iterations * ii
    lines = [
        f"pipeline of {schedule.loop.name} for {iterations} iterations "
        f"(prologue < cycle {steady_from}, epilogue >= cycle {steady_to})"
    ]
    for cycle in range(last + 1):
        ops = by_cycle.get(cycle, [])
        phase = (
            "prologue"
            if cycle < steady_from
            else "epilogue"
            if cycle >= steady_to
            else "kernel"
        )
        lines.append(f"  {cycle:4d} [{phase:>8}] " + ", ".join(ops))
    return "\n".join(lines)


def prologue_epilogue_cycles(schedule: ModuloSchedule) -> tuple[int, int]:
    """The fill and drain overhead the timing model charges: each is
    ``(stages - 1) * II`` cycles."""
    overhead = (schedule.stage_count - 1) * schedule.ii
    return overhead, overhead
