"""Kernel-only code generation (Rau, Schlansker, Tirumalai — MICRO 1992).

With rotating registers and predicated execution — the features the
paper's Trimaran machine provides — a modulo-scheduled loop needs no
explicit prologue or epilogue code: a single copy of the kernel executes
throughout, with

* every operation guarded by the rotating *stage predicate* of its
  stage, so stage ``s`` only executes once ``s`` kernel iterations have
  ramped up (and stops executing as the pipeline drains), and
* every virtual register mapped to a *rotating register*: the file
  rotates by one at each loop-back branch, so a value written to
  ``r[b]`` is addressed as ``r[b + n]`` by a consumer that reads it
  ``n`` kernel-boundary crossings later.

This module performs that renaming and emits the kernel-only code
structure: the rotation offset for a consumer of value ``v`` with
dependence distance ``d`` is ``stage(consumer) + d - stage(producer)``,
and the loop needs ``LC = trip-1`` / ``EC = stages`` count registers in
the Itanium idiom.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.dependence.graph import DependenceGraph
from repro.ir.operations import Operation
from repro.ir.values import Constant, VirtualRegister
from repro.pipeline.scheduler import ModuloSchedule


@dataclass(frozen=True)
class RotatingRef:
    """A rotating-register reference: file, base index, rotation offset."""

    file: str
    base: int
    offset: int

    def render(self) -> str:
        return f"{self.file}[{self.base}+{self.offset}]" if self.offset else f"{self.file}[{self.base}]"


@dataclass(frozen=True)
class PredicatedOp:
    """One kernel operation with its stage predicate and rotating refs."""

    op: Operation
    stage: int
    dest: RotatingRef | None
    srcs: tuple[object, ...]  # RotatingRef | Constant | str (invariant)

    def render(self) -> str:
        parts = [f"(p{self.stage})", self.op.mnemonic()]
        if self.dest is not None:
            parts.append(self.dest.render() + " =")
        rendered = []
        for s in self.srcs:
            if isinstance(s, RotatingRef):
                rendered.append(s.render())
            elif isinstance(s, Constant):
                rendered.append(str(s.value))
            else:
                rendered.append(str(s))
        if self.op.kind.is_memory:
            rendered.append(f"{self.op.array}{self.op.subscript}")
        return " ".join(parts) + (" " + ", ".join(rendered) if rendered else "")


@dataclass
class KernelOnlyCode:
    """The complete kernel-only loop body."""

    ii: int
    stages: int
    rows: list[list[PredicatedOp]]
    register_bases: dict[VirtualRegister, RotatingRef]
    max_offset: dict[str, int] = field(default_factory=dict)

    @property
    def epilogue_count(self) -> int:
        """EC: extra kernel executions needed to drain the pipeline."""
        return self.stages

    def rotating_registers_needed(self) -> dict[str, int]:
        """Physical rotating registers per file: one base per value plus
        the deepest rotation offset still referenced."""
        needed: dict[str, int] = {}
        per_file_values: dict[str, int] = {}
        for ref in self.register_bases.values():
            per_file_values[ref.file] = per_file_values.get(ref.file, 0) + 1
        for file, count in per_file_values.items():
            needed[file] = count + self.max_offset.get(file, 0)
        return needed

    def listing(self) -> str:
        lines = [
            f"kernel-only code: II={self.ii}, {self.stages} stages, "
            f"EC={self.epilogue_count}, rotating registers "
            f"{self.rotating_registers_needed()}"
        ]
        for cycle, row in enumerate(self.rows):
            lines.append(f"  cycle {cycle}:")
            for pop in row:
                lines.append(f"    {pop.render()}")
        lines.append("    br.ctop  # rotate registers and predicates")
        return "\n".join(lines)


def generate_kernel_only_code(
    schedule: ModuloSchedule, graph: DependenceGraph
) -> KernelOnlyCode:
    """Rename a modulo schedule into kernel-only form."""
    from repro.regalloc.allocator import register_file_of

    loop = schedule.loop
    ii = schedule.ii

    # Assign each defined value a base index in its rotating file.
    bases: dict[VirtualRegister, RotatingRef] = {}
    counters: dict[str, int] = {}
    for op in loop.body:
        if op.dest is None:
            continue
        file = register_file_of(op.dest)
        index = counters.get(file, 0)
        counters[file] = index + 1
        bases[op.dest] = RotatingRef(file, index, 0)

    # Producer lookup for operand offset computation.
    producer_of: dict[VirtualRegister, Operation] = {
        op.dest: op for op in loop.body if op.dest is not None
    }
    carried_exit_producer: dict[VirtualRegister, tuple[Operation, int]] = {}
    for c in loop.carried:
        if isinstance(c.exit, VirtualRegister) and c.exit in producer_of:
            carried_exit_producer[c.entry] = (producer_of[c.exit], 1)

    max_offset: dict[str, int] = {}

    def operand_ref(src, consumer_stage: int):
        if isinstance(src, Constant):
            return src
        assert isinstance(src, VirtualRegister)
        if src in producer_of:
            producer, distance = producer_of[src], 0
        elif src in carried_exit_producer:
            producer, distance = carried_exit_producer[src]
            src = producer.dest
        else:
            # Loop invariant (preheader value or never-updated carried
            # scalar): lives in a static register, no rotation.
            return f"%{src.name}"
        producer_stage = schedule.stage_of(producer.uid)
        offset = consumer_stage + distance - producer_stage
        if offset < 0:
            raise ValueError(
                f"negative rotation offset for {src} "
                f"(consumer stage {consumer_stage}, producer stage "
                f"{producer_stage}, distance {distance})"
            )
        base = bases[src]
        file = base.file
        max_offset[file] = max(max_offset.get(file, 0), offset)
        return RotatingRef(file, base.base, offset)

    rows: list[list[PredicatedOp]] = [[] for _ in range(ii)]
    for op in sorted(loop.body, key=lambda o: schedule.times[o.uid]):
        stage = schedule.stage_of(op.uid)
        dest = bases.get(op.dest) if op.dest is not None else None
        srcs = tuple(operand_ref(s, stage) for s in op.srcs)
        rows[schedule.times[op.uid] % ii].append(
            PredicatedOp(op=op, stage=stage, dest=dest, srcs=srcs)
        )

    return KernelOnlyCode(
        ii=ii,
        stages=schedule.stage_count,
        rows=rows,
        register_bases=bases,
        max_offset=max_offset,
    )
