"""Software pipelining: iterative modulo scheduling and supporting
analyses (MII bounds, reservation tables, list scheduling)."""

from repro.pipeline.codegen import (
    KernelOnlyCode,
    PredicatedOp,
    RotatingRef,
    generate_kernel_only_code,
)
from repro.pipeline.kernel import (
    kernel_listing,
    pipeline_listing,
    prologue_epilogue_cycles,
)
from repro.pipeline.list_schedule import list_schedule_length
from repro.pipeline.mve import (
    MVEResult,
    expanded_kernel_listing,
    modulo_variable_expansion,
    value_lifetimes,
)
from repro.pipeline.mii import edge_delay, minimum_ii, rec_mii, res_mii
from repro.pipeline.reservation import ModuloReservationTable
from repro.pipeline.scheduler import (
    ModuloSchedule,
    SchedulingError,
    modulo_schedule,
)

__all__ = [
    "KernelOnlyCode",
    "MVEResult",
    "PredicatedOp",
    "RotatingRef",
    "generate_kernel_only_code",
    "ModuloReservationTable",
    "ModuloSchedule",
    "SchedulingError",
    "edge_delay",
    "expanded_kernel_listing",
    "kernel_listing",
    "list_schedule_length",
    "modulo_variable_expansion",
    "pipeline_listing",
    "prologue_epilogue_cycles",
    "value_lifetimes",
    "minimum_ii",
    "modulo_schedule",
    "rec_mii",
    "res_mii",
]
