"""Acyclic list scheduling for non-pipelined code.

Cleanup loops and (conceptually) prologue/epilogue code run without
software pipelining; their per-iteration cost is the makespan of a
resource-constrained list schedule of one iteration, honoring
zero-distance dependences and operation latencies.  Loop-carried edges
are ignored — successive iterations of unpipelined code simply run
back-to-back, which the sequential-iteration cost model reflects.
"""

from __future__ import annotations

from repro.dependence.graph import DependenceGraph
from repro.ir.loop import Loop
from repro.machine.machine import MachineDescription
from repro.pipeline.mii import edge_delay


def list_schedule_length(
    loop: Loop,
    graph: DependenceGraph,
    machine: MachineDescription,
) -> int:
    """Makespan (cycles) of one sequentially executed iteration."""
    if not loop.body:
        return 0
    # Critical-path priority over zero-distance edges.
    height = {op.uid: machine.opcode_info(op).latency for op in loop.body}
    for _ in range(len(loop.body)):
        changed = False
        for edge in graph.edges:
            if edge.distance != 0:
                continue
            candidate = height[edge.dst] + edge_delay(edge, graph, machine)
            if candidate > height[edge.src]:
                height[edge.src] = candidate
                changed = True
        if not changed:
            break

    body_index = {op.uid: i for i, op in enumerate(loop.body)}
    pending = sorted(
        loop.body, key=lambda op: (-height[op.uid], body_index[op.uid])
    )
    times: dict[int, int] = {}
    # row -> set of busy (instance) names
    busy: dict[int, set[str]] = {}
    makespan = 0

    for op in pending:
        earliest = 0
        for edge in graph.predecessors(op.uid):
            if edge.distance != 0 or edge.src not in times:
                continue
            earliest = max(
                earliest, times[edge.src] + edge_delay(edge, graph, machine)
            )
        info = machine.opcode_info(op)
        t = earliest
        while True:
            ok = True
            chosen: list[tuple[int, str]] = []
            taken: set[tuple[int, str]] = set()
            for use in info.uses:
                rc = machine.resource_class(use.resource)
                placed = False
                for instance in rc.instances():
                    cells = [
                        (t + k, instance) for k in range(use.cycles)
                    ]
                    if any(
                        c[1] in busy.get(c[0], set()) or c in taken for c in cells
                    ):
                        continue
                    chosen.extend(cells)
                    taken.update(cells)
                    placed = True
                    break
                if not placed:
                    ok = False
                    break
            if ok:
                for cycle, instance in chosen:
                    busy.setdefault(cycle, set()).add(instance)
                times[op.uid] = t
                makespan = max(makespan, t + info.latency)
                break
            t += 1

    return makespan
