"""Ablation — Kernighan-Lin iteration budget.

The paper notes the partitioner converges after only a few iterations and
that the iteration count can be artificially limited if compile time
matters.  This ablation measures (a) the natural convergence profile
across a corpus sample, and (b) how much quality a hard one-iteration cap
gives up.
"""

from collections import Counter

from conftest import pedantic

from repro.dependence.analysis import analyze_loop
from repro.machine.configs import paper_machine
from repro.vectorize.partition import PartitionConfig, partition_operations
from repro.workloads.spec import build_benchmark

SAMPLE_BENCHMARKS = ("101.tomcatv", "103.su2cor", "172.mgrid", "125.turb3d")


def run_ablation():
    machine = paper_machine()
    iteration_histogram: Counter[int] = Counter()
    capped_regressions = 0
    total = 0
    for name in SAMPLE_BENCHMARKS:
        for wl in build_benchmark(name).loops:
            dep = analyze_loop(wl.loop, machine.vector_length)
            free = partition_operations(dep, machine)
            capped = partition_operations(
                dep, machine, PartitionConfig(max_iterations=1)
            )
            iteration_histogram[free.iterations] += 1
            capped_regressions += capped.cost > free.cost
            total += 1
    return {
        "histogram": dict(sorted(iteration_histogram.items())),
        "capped_regressions": capped_regressions,
        "total": total,
    }


def test_bench_ablation_kl_iterations(benchmark):
    result = pedantic(benchmark, run_ablation)
    print()
    print(
        f"KL convergence over {result['total']} loops: iterations "
        f"histogram {result['histogram']}; one-iteration cap loses "
        f"quality on {result['capped_regressions']} loops"
    )
    # "In practice we observe that a solution is found after only a few
    # iterations" — nothing should need more than a handful.
    assert max(result["histogram"]) <= 6
    # Most loops converge within two iterations.
    fast = sum(v for k, v in result["histogram"].items() if k <= 2)
    assert fast / result["total"] >= 0.8
