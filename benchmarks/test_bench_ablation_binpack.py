"""Ablation — the squared-weight bin-packing tie-break.

The paper (Section 3.2) selects, among scheduling alternatives that do
not raise the high-water mark, the one minimizing the sum of squared bin
weights, and argues this balancing is what makes the incremental
release-and-reserve cost probes accurate.  This ablation disables the
tie-break (first-fit among equal-high alternatives) and measures the
partition costs found across a corpus sample: the balanced packer must
never lose, and should strictly win on some loops.
"""

from conftest import pedantic

from repro.dependence.analysis import analyze_loop
from repro.machine.configs import paper_machine
from repro.vectorize.partition import PartitionConfig, partition_operations
from repro.workloads.spec import build_benchmark

SAMPLE_BENCHMARKS = ("101.tomcatv", "103.su2cor", "172.mgrid")


def run_ablation():
    machine = paper_machine()
    balanced_total = 0
    unbalanced_total = 0
    wins = losses = 0
    loops = 0
    for name in SAMPLE_BENCHMARKS:
        for wl in build_benchmark(name).loops:
            dep = analyze_loop(wl.loop, machine.vector_length)
            balanced = partition_operations(dep, machine)
            unbalanced = partition_operations(
                dep, machine, PartitionConfig(balanced_bin_packing=False)
            )
            balanced_total += balanced.cost
            unbalanced_total += unbalanced.cost
            wins += balanced.cost < unbalanced.cost
            losses += balanced.cost > unbalanced.cost
            loops += 1
    return {
        "loops": loops,
        "balanced_total": balanced_total,
        "unbalanced_total": unbalanced_total,
        "wins": wins,
        "losses": losses,
    }


def test_bench_ablation_binpack(benchmark):
    result = pedantic(benchmark, run_ablation)
    print()
    print(
        f"bin-packing tie-break ablation over {result['loops']} loops: "
        f"balanced total cost {result['balanced_total']}, "
        f"first-fit total cost {result['unbalanced_total']} "
        f"(balanced strictly better on {result['wins']}, "
        f"worse on {result['losses']})"
    )
    assert result["balanced_total"] <= result["unbalanced_total"]
    assert result["wins"] >= 1
    # occasional per-loop losses are acceptable heuristic noise, but they
    # must stay rare
    assert result["losses"] <= result["wins"]
