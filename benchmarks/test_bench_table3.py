"""Table 3 — per-loop ResMII / final II outcomes.

Paper: across nine benchmarks, selective vectorization finds a strictly
lower ResMII than every competing technique on 27-83% of resource-limited
loops depending on the benchmark, is never worse on ResMII for all but
one loop, and occasionally loses on final II because iterative modulo
scheduling is a heuristic.

Our corpus matches the paper's resource-limited loop counts exactly (30,
6, 38, 67, 12, 133, 14, 16, 61) and tracks the better/equal splits.
"""

from conftest import pedantic

from repro.evaluation.tables import PAPER_TABLE3, format_table3


def test_bench_table3(benchmark, evaluator):
    rows = pedantic(benchmark, evaluator.table3)
    print()
    print(format_table3(rows))

    for name, row in rows.items():
        paper = PAPER_TABLE3[name]
        # resource-limited loop counts match the paper exactly
        assert row["loops"] == paper["loops"], name
        res = row["res_mii"]
        # selective vectorization must never *increase* resource
        # requirements (the paper sees one exception in 377 loops)
        assert res["worse"] <= 1, name
        # better-count within a modest absolute band of the paper's
        assert abs(res["better"] - paper["better"]) <= 8, (
            name,
            res,
            paper,
        )

    total_better = sum(r["res_mii"]["better"] for r in rows.values())
    paper_better = sum(p["better"] for p in PAPER_TABLE3.values())
    assert abs(total_better - paper_better) / paper_better < 0.15
