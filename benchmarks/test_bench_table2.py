"""Table 2 — whole-benchmark speedup over modulo scheduling.

Paper shape: traditional vectorization degrades performance on almost
every benchmark (0.18x on nasa7 in the paper — loop distribution plus
through-memory scalar expansion); full vectorization roughly matches the
baseline; selective vectorization wins everywhere except the
low-trip-count turb3d, with the maximum on tomcatv (1.38x) and a 1.11x
mean.

The absolute traditional-column degradations are milder here (our timing
is pure schedule arithmetic on a synthetic corpus), but every ordering
the paper reports is reproduced: traditional < full <= selective per
benchmark, nasa7 worst for traditional, tomcatv best and turb3d worst
for selective, and a selective mean within a few percent of 1.11x.
"""

from conftest import pedantic

from repro.evaluation.tables import format_table2
from repro.workloads.spec import BENCHMARK_NAMES


def test_bench_table2(benchmark, evaluator):
    rows = pedantic(benchmark, evaluator.table2)
    print()
    print(format_table2(rows))

    assert set(rows) == set(BENCHMARK_NAMES)
    for name, row in rows.items():
        # Ordering within each benchmark: distribution never beats keeping
        # the loop intact; selective never loses to full vectorization.
        assert row["traditional"] <= row["full"] + 0.05, name
        assert row["selective"] >= row["full"] - 0.02, name

    selective = {n: r["selective"] for n, r in rows.items()}
    mean = sum(selective.values()) / len(selective)
    assert 1.05 <= mean <= 1.20, f"selective mean {mean:.3f} (paper: 1.11)"
    assert max(selective, key=selective.get) == "101.tomcatv"
    assert selective["101.tomcatv"] >= 1.30
    assert min(selective, key=selective.get) == "125.turb3d"
    assert selective["125.turb3d"] <= 1.02

    traditional = {n: r["traditional"] for n, r in rows.items()}
    assert min(traditional, key=traditional.get) == "093.nasa7"
    assert traditional["093.nasa7"] <= 0.70
    # hydro2d/swim barely affected in the paper (0.94 / 1.01)
    assert traditional["104.hydro2d"] >= 0.88
    assert traditional["171.swim"] >= 0.90

    full = {n: r["full"] for n, r in rows.items()}
    assert min(full, key=full.get) == "093.nasa7"  # paper: 0.76
    assert all(v <= 1.06 for v in full.values())
