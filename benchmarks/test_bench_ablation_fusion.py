"""Ablation — loop fusion inside the traditional vectorizer.

Paper, Section 4.1: "In a straightforward implementation, vectorization
tends to create a large number of distributed loops.  In order to
mitigate this effect as much as possible, we perform loop fusion in the
vectorizer."

This ablation turns fusion off (every dependence component becomes its
own loop) and measures how much worse the traditional vectorizer gets:
loop counts multiply, and with them per-loop setup, pipeline fill/drain,
and scalar-expansion traffic.
"""

from conftest import pedantic

from repro.compiler.driver import _compile_unit
from repro.compiler.strategies import Strategy
from repro.compiler.driver import compile_loop
from repro.dependence.analysis import analyze_loop
from repro.machine.configs import paper_machine
from repro.simulate.timing import aggregate_cycles
from repro.vectorize.communication import Side
from repro.vectorize.traditional import distribute_loop
from repro.vectorize.transform import transform_loop
from repro.workloads.spec import build_benchmark

SAMPLE_BENCHMARKS = ("103.su2cor", "172.mgrid")


def traditional_cycles(loop, machine, trip, fuse):
    dep = analyze_loop(loop, machine.vector_length)
    timings = []
    units = 0
    for dist in distribute_loop(dep, machine, fuse=fuse):
        sub_dep = analyze_loop(dist.loop, machine.vector_length)
        if dist.vector:
            assignment = {
                op.uid: (Side.VECTOR if sub_dep.is_vectorizable(op) else Side.SCALAR)
                for op in dist.loop.body
            }
            factor = machine.vector_length
        else:
            assignment = {op.uid: Side.SCALAR for op in dist.loop.body}
            factor = 1
        tr = transform_loop(sub_dep, machine, assignment, factor, suffix=".tr")
        timings.append(_compile_unit(tr, machine).timing)
        units += 1
    return aggregate_cycles(timings, trip), units


def run_ablation():
    machine = paper_machine()
    fused_total = unfused_total = base_total = 0
    fused_units = unfused_units = 0
    loops = 0
    for name in SAMPLE_BENCHMARKS:
        for wl in build_benchmark(name).loops:
            weight = wl.invocations
            base = compile_loop(wl.loop, machine, Strategy.BASELINE)
            base_total += weight * base.invocation_cycles(wl.trip_count)
            fused, fu = traditional_cycles(wl.loop, machine, wl.trip_count, True)
            unfused, uu = traditional_cycles(wl.loop, machine, wl.trip_count, False)
            fused_total += weight * fused
            unfused_total += weight * unfused
            fused_units += fu
            unfused_units += uu
            loops += 1
    return {
        "loops": loops,
        "fused_speedup": base_total / fused_total,
        "unfused_speedup": base_total / unfused_total,
        "fused_units": fused_units,
        "unfused_units": unfused_units,
    }


def test_bench_ablation_fusion(benchmark):
    result = pedantic(benchmark, run_ablation)
    print()
    print(
        f"traditional vectorizer over {result['loops']} loops: "
        f"with fusion {result['fused_speedup']:.2f}x "
        f"({result['fused_units']} loops emitted), without fusion "
        f"{result['unfused_speedup']:.2f}x "
        f"({result['unfused_units']} loops emitted)"
    )
    # fusion reduces the number of distributed loops substantially...
    assert result["unfused_units"] >= 1.5 * result["fused_units"]
    # ...and recovers real performance
    assert result["fused_speedup"] >= result["unfused_speedup"] + 0.05
