"""Extension — whole-iteration assignment (paper Section 6, future work).

The paper sketches an alternative to per-operation partitioning: unroll
by ``VL + k`` and give whole iterations to the vector or scalar units,
eliminating scalar<->vector communication at the cost of permanently
misaligned vector memory references.  We implement the scheme and compare
it to selective vectorization on the fully parallel loops it applies to.

Measured shape: whole-iteration assignment indeed needs zero transfers
and pays a merge on every vector memory reference.  On small streaming
loops the scheme *wins* — the odd unroll factor (VL+1) adds a scalar
iteration of pure extra throughput where selective vectorization finds no
integral improvement — while on compute-rich loops the operation-level
partitioner wins.  This complementarity is exactly why the paper flags
larger scheduling windows as promising future work.
"""

from conftest import pedantic

from repro.compiler.driver import _compile_unit, compile_loop
from repro.compiler.strategies import Strategy
from repro.dependence.analysis import analyze_loop
from repro.machine.configs import paper_machine
from repro.simulate.timing import aggregate_cycles
from repro.vectorize.iteration_assign import whole_iteration_transform
from repro.workloads.spec import build_benchmark

SAMPLE_BENCHMARKS = ("171.swim", "172.mgrid")


def run_extension():
    machine = paper_machine()
    rows = []
    for name in SAMPLE_BENCHMARKS:
        for wl in build_benchmark(name).loops:
            dep = analyze_loop(wl.loop, machine.vector_length)
            tr = whole_iteration_transform(dep, machine)
            if tr is None:
                continue
            unit = _compile_unit(tr, machine)
            wia = aggregate_cycles([unit.timing], wl.trip_count)
            sel = compile_loop(
                wl.loop, machine, Strategy.SELECTIVE
            ).invocation_cycles(wl.trip_count)
            base = compile_loop(
                wl.loop, machine, Strategy.BASELINE
            ).invocation_cycles(wl.trip_count)
            rows.append(
                {
                    "loop": wl.loop.name,
                    "transfers": unit.transform.n_transfers,
                    "merges": unit.transform.n_merges,
                    "wia": base / wia,
                    "selective": base / sel,
                }
            )
    return rows


def test_bench_extension_whole_iteration(benchmark):
    rows = pedantic(benchmark, run_extension)
    print()
    print(f"{'loop':<18} {'wia':>6} {'sel':>6} {'xfers':>6} {'merges':>7}")
    for row in rows:
        print(
            f"{row['loop']:<18} {row['wia']:>6.2f} {row['selective']:>6.2f} "
            f"{row['transfers']:>6} {row['merges']:>7}"
        )
    assert rows, "some loops must qualify for whole-iteration assignment"
    # the scheme's defining property: no communication at all
    assert all(r["transfers"] == 0 for r in rows)
    # and its predicted cost: every vector memory reference merges
    assert all(r["merges"] >= 1 for r in rows)
    # both approaches beat the baseline on these fully parallel loops
    mean_sel = sum(r["selective"] for r in rows) / len(rows)
    mean_wia = sum(r["wia"] for r in rows) / len(rows)
    assert mean_wia >= 1.0
    assert mean_sel >= 1.0
    # and each wins somewhere: the two scheduling windows complement
    assert any(r["wia"] > r["selective"] + 0.05 for r in rows)
    assert any(r["selective"] > r["wia"] + 0.05 for r in rows)
