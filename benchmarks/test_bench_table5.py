"""Table 5 — misaligned vs aligned vector memory.

Paper: assuming every vector memory operation is misaligned (no alignment
information) costs little — software pipelining hides most of the
realignment latency, and with previous-iteration reuse only one merge per
reference remains.  Perfect alignment information helps modestly (at most
+0.10 on tomcatv; zero on several benchmarks).

Our reproduction shows the same: aligned is never worse, and the gains
stay small.
"""

from conftest import pedantic

from repro.evaluation.tables import format_table5


def test_bench_table5(benchmark, evaluator):
    rows = pedantic(benchmark, evaluator.table5)
    print()
    print(format_table5(rows))

    for name, row in rows.items():
        # alignment information never hurts (beyond scheduler jitter)
        assert row["aligned"] >= row["misaligned"] - 0.03, name
        # and the win is modest, as in the paper
        assert row["aligned"] - row["misaligned"] <= 0.15, name
