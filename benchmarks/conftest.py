"""Shared state for the benchmark harness.

A single session-scoped :class:`~repro.evaluation.experiments.Evaluator`
caches compiled loops, so regenerating all tables costs one compilation
sweep of the corpus rather than one per table.
"""

from __future__ import annotations

import pytest

from repro.evaluation.experiments import Evaluator


@pytest.fixture(scope="session")
def evaluator():
    return Evaluator()


def pedantic(benchmark, fn, *args):
    """Run a heavyweight experiment exactly once under pytest-benchmark
    timing (the experiments are deterministic; repetition buys nothing)."""
    return benchmark.pedantic(fn, args=args, rounds=1, iterations=1)
