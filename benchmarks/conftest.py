"""Shared state for the benchmark harness.

A single session-scoped :class:`~repro.evaluation.experiments.Evaluator`
caches compiled loops, so regenerating all tables costs one compilation
sweep of the corpus rather than one per table.

Every run of the paper experiments also leaves ``BENCH_<table>.json``
artifacts behind (schema in :mod:`repro.evaluation.bench_io`) so CI can
archive the numbers and diff them against ``benchmarks/baseline.json``.
Set ``REPRO_BENCH_DIR`` to redirect them, or ``REPRO_BENCH_DIR=''`` to
suppress them.
"""

from __future__ import annotations

import os

import pytest

from repro.evaluation import bench_io
from repro.evaluation.experiments import Evaluator

_EVALUATOR: Evaluator | None = None

#: experiment name -> result data, filled by ``pedantic`` as tests run.
_RESULTS: dict[str, object] = {}

#: experiment riding each timed callable (bound-method / function name).
_EXPERIMENT_BY_FN = {
    "figure1_iis": "figure1",
    "table2": "table2",
    "table3": "table3",
    "table4": "table4",
    "table5": "table5",
}


@pytest.fixture(scope="session")
def evaluator():
    global _EVALUATOR
    if _EVALUATOR is None:
        _EVALUATOR = Evaluator()
    return _EVALUATOR


def pedantic(benchmark, fn, *args):
    """Run a heavyweight experiment exactly once under pytest-benchmark
    timing (the experiments are deterministic; repetition buys nothing)."""
    result = benchmark.pedantic(fn, args=args, rounds=1, iterations=1)
    experiment = _EXPERIMENT_BY_FN.get(getattr(fn, "__name__", ""))
    if experiment is not None:
        _RESULTS[experiment] = result
    return result


def pytest_sessionfinish(session, exitstatus):
    if not _RESULTS:
        return
    directory = os.environ.get("REPRO_BENCH_DIR", ".")
    if not directory:
        return
    reporter = session.config.pluginmanager.get_plugin("terminalreporter")
    for experiment in sorted(_RESULTS):
        payload = bench_io.payload_for(
            experiment, _RESULTS[experiment], _EVALUATOR
        )
        path = bench_io.write_bench_json(experiment, payload, directory)
        if reporter is not None:
            reporter.write_line(f"wrote {path}")
