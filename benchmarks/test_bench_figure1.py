"""Figure 1 — the motivating example.

Paper: dot product on a three-issue machine with one vector operation
per cycle.  Modulo scheduling II=2.0; traditional vectorization 3.0;
full vectorization 1.5; selective vectorization 1.0.

Our reproduction matches all four values exactly.
"""

from conftest import pedantic

from repro.evaluation.experiments import figure1_iis
from repro.evaluation.tables import PAPER_FIGURE1, format_figure1


def test_bench_figure1(benchmark):
    measured = pedantic(benchmark, figure1_iis)
    print()
    print(format_figure1(measured))
    assert measured == PAPER_FIGURE1
