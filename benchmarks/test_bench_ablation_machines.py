"""Ablation — machine balance (vector length and vector-unit count).

The paper argues selective vectorization matters most when scalar
throughput rivals vector throughput (VL=2 on the Table 1 machine), and
that "as vector length increases ... full vectorization becomes
increasingly advantageous" (Section 4).  This ablation sweeps machine
variants and measures the gap between selective and full vectorization.
"""

from conftest import pedantic

from repro.compiler.driver import compile_loop
from repro.compiler.strategies import Strategy
from repro.machine.configs import (
    dual_vector_unit_machine,
    paper_machine,
    wide_vector_machine,
)
from repro.workloads.spec import build_benchmark

SAMPLE = "103.su2cor"


def run_sweep():
    bench = build_benchmark(SAMPLE)
    results = {}
    for machine in (
        paper_machine(),
        wide_vector_machine(4),
        dual_vector_unit_machine(),
    ):
        base = full = sel = 0
        for wl in bench.loops:
            weight = wl.invocations
            base += weight * compile_loop(
                wl.loop, machine, Strategy.BASELINE
            ).invocation_cycles(wl.trip_count)
            full += weight * compile_loop(
                wl.loop, machine, Strategy.FULL
            ).invocation_cycles(wl.trip_count)
            sel += weight * compile_loop(
                wl.loop, machine, Strategy.SELECTIVE
            ).invocation_cycles(wl.trip_count)
        results[machine.name] = {
            "full": base / full,
            "selective": base / sel,
        }
    return results


def test_bench_ablation_machine_balance(benchmark):
    results = pedantic(benchmark, run_sweep)
    print()
    for name, row in results.items():
        gap = row["selective"] - row["full"]
        print(
            f"{name:<18} full {row['full']:.2f}  selective "
            f"{row['selective']:.2f}  gap {gap:+.2f}"
        )

    base_gap = results["paper-vliw"]["selective"] - results["paper-vliw"]["full"]
    wide_gap = (
        results["paper-vliw-vl4"]["selective"] - results["paper-vliw-vl4"]["full"]
    )
    # Relative advantage of selective over full shrinks as the vector side
    # gets stronger (longer vectors amortize scalar replication worse).
    assert wide_gap <= base_gap + 0.05
    # Selective never loses to full on any variant.
    for row in results.values():
        assert row["selective"] >= row["full"] - 0.02
