"""Extension — reduction recognition (paper Section 6, future work).

"Finally, this work would readily benefit from any loop transformations
that expose data parallelism, in particular loop interchange and
reduction recognition [6]. ... the latter allows for the vectorization
of reductions."

With reassociation permitted, the serial reduction chain — whose RecMII
of one fp-add latency per iteration caps every strategy on reduction
loops — becomes VL independent partial accumulations.  This benchmark
measures the effect across the corpus's reduction loops: RecMII halves
(VL = 2) and reduction-bound loops speed up accordingly — up to ~1.9x —
turning the benchmarks whose Table 2 speedups were pinned near 1.0 by
reductions into additional selective-vectorization wins.

A secondary finding: on *mixed* loops (a reduction plus substantial
parallel work) the all-vector reduction transform can lose to plain
selective vectorization, because it gives up the balanced scalar/vector
split.  The natural follow-up — feeding recognized reductions into the
Kernighan-Lin partitioner as vectorizable operations rather than
bypassing it — is exactly the kind of integration the paper's Section 6
sketches.
"""

from conftest import pedantic

from repro.compiler.driver import compile_loop
from repro.compiler.strategies import Strategy
from repro.machine.configs import paper_machine
from repro.workloads.spec import build_benchmark

SAMPLE_BENCHMARKS = ("104.hydro2d", "146.wave5")


def run_extension():
    machine = paper_machine()
    rows = []
    for name in SAMPLE_BENCHMARKS:
        for wl in build_benchmark(name).loops:
            if wl.archetype not in ("reduction", "mixed"):
                continue
            base = compile_loop(wl.loop, machine, Strategy.BASELINE)
            sel = compile_loop(wl.loop, machine, Strategy.SELECTIVE)
            red = compile_loop(
                wl.loop, machine, Strategy.SELECTIVE, allow_reassociation=True
            )
            if not red.units[0].transform.reduction_combines:
                continue
            b = base.invocation_cycles(wl.trip_count)
            rows.append(
                {
                    "loop": wl.loop.name,
                    "selective": b / sel.invocation_cycles(wl.trip_count),
                    "reassociated": b / red.invocation_cycles(wl.trip_count),
                    "rec_mii_base": base.rec_mii_per_iteration(),
                    "rec_mii_red": red.rec_mii_per_iteration(),
                }
            )
    return rows


def test_bench_extension_reduction(benchmark):
    rows = pedantic(benchmark, run_extension)
    print()
    print(f"{'loop':<20} {'sel':>6} {'reassoc':>8} {'RecMII':>14}")
    for row in rows:
        print(
            f"{row['loop']:<20} {row['selective']:>6.2f} "
            f"{row['reassociated']:>8.2f} "
            f"{row['rec_mii_base']:>6.1f} -> {row['rec_mii_red']:.1f}"
        )
    assert rows, "the corpus has reduction loops"
    # The recurrence bound drops for every vectorized reduction.
    assert all(r["rec_mii_red"] < r["rec_mii_base"] for r in rows)
    # And the wall-clock effect is real: reassociation beats plain
    # selective vectorization on the large majority of reduction loops.
    wins = sum(r["reassociated"] > r["selective"] + 0.02 for r in rows)
    assert wins >= 0.7 * len(rows)
    mean_gain = sum(r["reassociated"] / r["selective"] for r in rows) / len(rows)
    assert mean_gain > 1.1
