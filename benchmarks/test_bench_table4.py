"""Table 4 — communication must be considered during partitioning.

Paper: when the partitioner ignores scalar<->vector transfer costs (the
transfers are still inserted for correctness), most benchmarks suffer a
severe degradation; tracking communication is essential for selective
vectorization to be viable.

Our reproduction shows the same: the communication-blind variant is worse
than the communication-aware one on every benchmark.
"""

from conftest import pedantic

from repro.evaluation.tables import format_table4


def test_bench_table4(benchmark, evaluator):
    rows = pedantic(benchmark, evaluator.table4)
    print()
    print(format_table4(rows))

    for name, row in rows.items():
        assert row["considered"] >= row["ignored"], name

    # The blind variant loses meaningful performance on the benchmarks
    # where selective vectorization does real work.
    drops = {
        name: row["considered"] - row["ignored"] for name, row in rows.items()
    }
    assert drops["101.tomcatv"] >= 0.15
    assert drops["171.swim"] >= 0.10
    assert sum(d > 0.02 for d in drops.values()) >= 6
