"""Supplementary — the Livermore kernels under all four strategies.

Not a paper table, but the classic compiler-benchmark loops give an
interpretable per-kernel picture of where each technique pays off:
parallel kernels (K1, K7, K12) reward selective vectorization, the
reduction (K3) is pinned until reassociation is allowed, and the
recurrences (K5, K11) defeat everything — which is itself the paper's
point about dependence cycles.
"""

from conftest import pedantic

from repro.compiler.driver import compile_loop
from repro.compiler.strategies import ALL_STRATEGIES, Strategy
from repro.machine.configs import paper_machine
from repro.workloads.livermore import LIVERMORE_KERNELS

TRIP = 400


def run_suite():
    machine = paper_machine()
    rows = {}
    for name, factory in sorted(LIVERMORE_KERNELS.items()):
        loop = factory()
        base = compile_loop(loop, machine, Strategy.BASELINE)
        b = base.invocation_cycles(TRIP)
        row = {}
        for strategy in ALL_STRATEGIES[1:]:
            compiled = compile_loop(loop, machine, strategy)
            row[strategy.value] = b / compiled.invocation_cycles(TRIP)
        reassoc = compile_loop(
            loop, machine, Strategy.SELECTIVE, allow_reassociation=True
        )
        row["reassoc"] = b / reassoc.invocation_cycles(TRIP)
        rows[name] = row
    return rows


def test_bench_livermore(benchmark):
    rows = pedantic(benchmark, run_suite)
    print()
    print(f"{'kernel':<28} {'trad':>6} {'full':>6} {'sel':>6} {'reassoc':>8}")
    for name, row in rows.items():
        print(
            f"{name:<28} {row['traditional']:>6.2f} {row['full']:>6.2f} "
            f"{row['selective']:>6.2f} {row['reassoc']:>8.2f}"
        )

    # parallel kernels: selective wins
    for name in ("k1_hydro", "k7_equation_of_state"):
        assert rows[name]["selective"] > 1.1
    # recurrences: nobody wins
    for name in ("k5_tridiag", "k11_first_sum"):
        for value in rows[name].values():
            assert value <= 1.05
    # the reduction needs reassociation
    assert rows["k3_inner_product"]["selective"] <= 1.05
    assert rows["k3_inner_product"]["reassoc"] > 1.3
    # selective never loses to traditional anywhere
    for row in rows.values():
        assert row["selective"] >= row["traditional"] - 0.02
